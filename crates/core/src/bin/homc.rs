//! The `homc` command-line verifier.
//!
//! ```text
//! homc [options] <file.ml>       verify a source file
//! homc [options] --suite [name]  run the paper's Table 1 suite (or one program)
//! homc batch [batch-options] [program|file.ml ...]
//!                                   run many jobs through the work-stealing
//!                                   pool, each isolated under its own budget;
//!                                   failed/hung jobs degrade to `unknown`,
//!                                   never a process abort. With --cache-dir,
//!                                   SMT query results persist across runs in
//!                                   a versioned, checksummed segment store.
//! homc profile (<file.ml> | --suite [name]) [-o <out.folded>]
//!                                   self-profile: verify under a wall-clock
//!                                   tracer, fold the spans into
//!                                   flamegraph.pl-compatible stacks
//! homc trace-report <file.jsonl>    render a trace as a per-iteration timeline
//! homc trace-validate <file.jsonl>  check every line against the event schema
//! homc trace-diff <old.jsonl> <new.jsonl> [--threshold n=r[:s]]... [--gate]
//! homc bench-diff <old.json> <new.json>   [--threshold n=r[:s]]... [--gate]
//!                                   compare two runs; exit 1 on a threshold
//!                                   breach, 2 on a verdict flip, 3 when the
//!                                   inputs are incomparable
//! homc top <progress.jsonl> [--snapshot] [--interval <secs>]
//!                                   tail a --progress stream and redraw a
//!                                   live fleet summary (worker state, queue
//!                                   depth, per-job phase); --snapshot renders
//!                                   the current state once, deterministically
//! homc history <ledger-dir> [program]
//!                                   per-program latency/verdict trends and
//!                                   p50/p90 summaries from the run ledger
//! homc regress <ledger-dir> [--window <n>] [--ratio <r>] [--slack <ms>]
//!                                   gate the newest ledger run against the
//!                                   trailing-window median baseline; exit 1
//!                                   on a latency breach, 2 on a verdict
//!                                   flip, 3 on an incompatible ledger
//! homc check (<file.ml> | --suite [program]) --evidence-dir <dir>
//!                                   independently re-establish recorded
//!                                   verdicts from exported evidence: safe
//!                                   certificates are proof-checked and
//!                                   their invariants re-closed, unsafe
//!                                   counterexamples replayed through the
//!                                   interpreter; no CEGAR, no SMT search
//! homc explain (<file.ml> | --suite <program>)
//!                                   verify one program and narrate the
//!                                   verdict: certificate summary, per-
//!                                   iteration predicate provenance, dead-
//!                                   predicate census, heaviest refuted
//!                                   queries (byte-deterministic output)
//!
//! options:
//!   --timeout <secs>      per-program wall-clock deadline (fractions allowed)
//!   --inject <phase:n[:kind]>  deterministically fail the n-th checkpoint of a
//!                         phase (abs|mc|feas|interp|smt); kind is error|panic
//!   --stats               print per-program effort counters (SMT queries,
//!                         query-cache hits/misses, worklist pops, rescans
//!                         avoided), peak heap bytes per phase, and the
//!                         metrics registry's histograms under each line
//!   --trace <file.jsonl>  write one JSON event per line: phase spans, one
//!                         record per CEGAR iteration, SMT solves, faults
//!   --trace-logical <file.jsonl>  same, under a logical clock (sequence
//!                         numbers instead of timestamps, durations zeroed):
//!                         byte-identical across runs and machines
//!   --progress <file.jsonl>  stream live fleet telemetry (queue depth, worker
//!                         state, per-job CEGAR phase) to a second sink that
//!                         `homc top` can tail; job traces are byte-identical
//!                         with progress on or off
//!   --ledger <dir>        append one checksummed record per program (verdict,
//!                         per-phase latencies, peak heap, counters, trace
//!                         digest) to the persistent run ledger that `homc
//!                         history` and `homc regress` read
//!   --metrics-out <file>  dump the metrics registry in Prometheus text
//!                         exposition format after the run
//!   --artifacts-dir <dir> persist each program's winning predicate
//!                         environment, per-definition abstractions, and
//!                         interpolants; a re-run after an edit diffs the
//!                         per-definition manifest and re-verifies only the
//!                         changed dependency cones (seeding is candidate-
//!                         only, so it can speed a run up but never change
//!                         its verdict)
//!   --evidence-dir <dir>  export a verdict-evidence certificate per decisive
//!                         program: safe runs record the final predicate
//!                         environment, the saturated invariant, and one
//!                         refutation proof per UNSAT query it depends on;
//!                         unsafe runs record the replayable counterexample.
//!                         `homc check` re-establishes the verdicts from the
//!                         directory alone
//! ```
//!
//! Every program reports exactly one of `safe`, `unsafe`, or `unknown`; the
//! suite ends with a `passed/failed/unknown` tally and the exit code is
//! non-zero iff some program *failed* (wrong verdict or hard error) —
//! `unknown` under a tight budget is a reported outcome, not a failure.

use std::io::Write;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use homc::{
    bench_diff, check_evidence, fold_trace, ledger_record, parse_threshold, progress_complete,
    regress, render_batch_json, render_explain, render_history, render_report, render_top,
    run_batch, stable_hash64, suite, trace_diff, validate_folded, validate_trace, verify,
    ArtifactConfig, BatchJob, BatchOptions, DiffOptions, DiskFault, EvidenceConfig, EvidenceStore,
    Expected, Fault, FaultPlan, JobFault, JobStatus, Ledger, Metrics, RunRecord, Tracer,
    TrendOptions, Verdict, VerifierOptions, VerifyStats,
};

// The binary (not the library) installs the counting allocator: tests and
// downstream crates see a plain [`std::alloc::System`], so their golden
// traces never grow `peak_bytes` fields, while `homc` runs report real
// per-phase heap watermarks.
#[global_allocator]
static COUNTING_ALLOC: homc_metrics::mem::CountingAlloc = homc_metrics::mem::CountingAlloc::new();

fn fmt_d(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64())
}

/// Prints a report line, tolerating a closed stdout (`homc … | head` must
/// not panic on the broken pipe).
fn say(line: std::fmt::Arguments) {
    let _ = writeln!(std::io::stdout(), "{line}");
}

/// How one program's run is tallied.
#[derive(Clone, Copy, PartialEq, Eq)]
enum RunStatus {
    /// The verdict matched the expectation (or any decisive verdict, when
    /// there is no expectation).
    Passed,
    /// Wrong verdict or a hard error.
    Failed,
    /// The verifier gave up (budget, fault, inconclusive solver).
    Unknown,
}

/// What one program's run contributes to the suite tally.
struct RunReport {
    status: RunStatus,
    /// The verdict as printed (`safe`, `unsafe`, `unknown (...)`, or the
    /// hard error text) — what the ledger record carries.
    verdict: String,
    /// Wall-clock time for the whole run, including the front end (the
    /// per-phase `total` in [`VerifyStats`] covers only the CEGAR loop).
    wall: Duration,
    /// Effort counters, when verification produced an outcome at all.
    stats: Option<VerifyStats>,
}

fn run_one(
    name: &str,
    source: &str,
    expected: Option<Expected>,
    opts: &VerifierOptions,
    show_stats: bool,
) -> RunReport {
    let tracer = &opts.tracer;
    tracer.emit("run_start", |e| {
        e.str("name", name).str(
            "clock",
            if tracer.is_logical() {
                "logical"
            } else {
                "wall"
            },
        );
    });
    // The registry accumulates across the suite; the per-program report is
    // the delta against this pre-run snapshot.
    let metrics_before = opts.metrics.enabled().then(|| opts.metrics.snapshot());
    let t = Instant::now();
    let result = verify(source, opts);
    let wall = t.elapsed();
    let report = match result {
        Ok(out) => {
            let v = match &out.verdict {
                Verdict::Safe => "safe".to_string(),
                Verdict::Unsafe { .. } => "unsafe".to_string(),
                Verdict::Unknown { reason } => format!("unknown ({reason})"),
            };
            let status = match (&out.verdict, expected) {
                (Verdict::Unknown { .. }, _) => RunStatus::Unknown,
                (_, None) => RunStatus::Passed,
                (_, Some(Expected::Safe)) if out.verdict.is_safe() => RunStatus::Passed,
                (_, Some(Expected::Unsafe)) if out.verdict.is_unsafe() => RunStatus::Passed,
                (_, Some(Expected::Diverges)) if !out.verdict.is_unsafe() => RunStatus::Passed,
                _ => RunStatus::Failed,
            };
            say(format_args!(
                "{name:12} S={:4} O={} C={:2}  abst={} mc={} cegar={} total={} wall={}  -> {v}{}",
                out.size,
                out.order,
                out.stats.cycles,
                fmt_d(out.stats.abst),
                fmt_d(out.stats.mc),
                fmt_d(out.stats.cegar),
                fmt_d(out.stats.total),
                fmt_d(wall),
                if status == RunStatus::Failed {
                    "  ** UNEXPECTED **"
                } else {
                    ""
                },
            ));
            // An `unknown` run is precisely the one whose effort is worth
            // inspecting (what was it doing when the budget hit?), so its
            // partial counters are surfaced even without --stats.
            if show_stats || status == RunStatus::Unknown {
                say(format_args!(
                    "{:12} smt={} cache={}/{} worklist_pops={} rescans_avoided={} \
                     cuts_sliced={} cert_reuse={} fm_prefix={}",
                    "",
                    out.stats.smt_queries,
                    out.stats.cache_hits,
                    out.stats.cache_misses,
                    out.stats.worklist_pops,
                    out.stats.rescans_avoided,
                    out.stats.cuts_sliced,
                    out.stats.cert_reuse_hits,
                    out.stats.fm_prefix_hits,
                ));
                say(format_args!(
                    "{:12} abs_defs_reused={} abs_defs_rebuilt={} abs_implicants={} \
                     abs_queries_saved={} abs_ctx_truncated={} preds_dead={}",
                    "",
                    out.stats.abs_defs_reused,
                    out.stats.abs_defs_rebuilt,
                    out.stats.abs_implicants,
                    out.stats.abs_queries_saved,
                    out.stats.abs_ctx_truncated,
                    out.stats.preds_dead,
                ));
                say(format_args!(
                    "{:12} reverify_defs_skipped={} reverify_preds_seeded={} \
                     artifact_quarantine={}",
                    "",
                    out.stats.reverify_defs_skipped,
                    out.stats.reverify_preds_seeded,
                    out.stats.artifact_quarantine,
                ));
                if out.stats.evidence_digest != 0 {
                    say(format_args!(
                        "{:12} evidence_digest={:016x}",
                        "", out.stats.evidence_digest,
                    ));
                }
            }
            if show_stats && out.stats.peak_bytes > 0 {
                say(format_args!(
                    "{:12} peak_bytes={} (abs={} mc={} feas={} interp={})",
                    "",
                    out.stats.peak_bytes,
                    out.stats.peak_abs_bytes,
                    out.stats.peak_mc_bytes,
                    out.stats.peak_feas_bytes,
                    out.stats.peak_interp_bytes,
                ));
            }
            if show_stats {
                if let Some(before) = &metrics_before {
                    let delta = opts.metrics.snapshot().delta(before);
                    let rendered = delta.render("             ");
                    if !rendered.is_empty() {
                        say(format_args!("{}", rendered.trim_end()));
                    }
                }
            }
            RunReport {
                status,
                verdict: v,
                wall,
                stats: Some(out.stats),
            }
        }
        Err(e) => {
            eprintln!("{name}: error: {e}");
            tracer.emit("fault", |ev| {
                ev.str("phase", "frontend")
                    .str("kind", "error")
                    .str("detail", &e.to_string());
            });
            RunReport {
                status: RunStatus::Failed,
                verdict: format!("error: {e}"),
                wall,
                stats: None,
            }
        }
    };
    tracer.emit("run_end", |e| {
        e.num("dur_us", tracer.dur_us(t));
    });
    tracer.flush();
    report
}

/// Emits the `batch_job` settlement event for one program to the progress
/// sink. The suite runner is a fleet of one worker, but it speaks the same
/// progress dialect as `homc batch`, so `homc top` reads either.
fn emit_settlement(progress: &Tracer, job: u64, name: &str, report: &RunReport) {
    progress.emit("batch_job", |e| {
        e.num("job", job)
            .str("name", name)
            .str(
                "status",
                match report.status {
                    RunStatus::Passed => "passed",
                    RunStatus::Failed => "failed",
                    RunStatus::Unknown => "unknown",
                },
            )
            .str("verdict", &report.verdict)
            .num(
                "wall_us",
                if progress.is_logical() {
                    0
                } else {
                    report.wall.as_micros() as u64
                },
            )
            .num("attempts", 1)
            .num(
                "cache_hits",
                report.stats.as_ref().map_or(0, |s| s.cache_hits),
            )
            .num(
                "disk_hits",
                report.stats.as_ref().map_or(0, |s| s.disk_hits),
            );
    });
}

struct Cli {
    timeout: Option<Duration>,
    faults: FaultPlan,
    suite: bool,
    stats: bool,
    trace: Option<(String, bool)>,
    progress: Option<String>,
    ledger: Option<String>,
    metrics_out: Option<String>,
    artifacts_dir: Option<String>,
    evidence_dir: Option<String>,
    target: Option<String>,
}

/// Every subcommand `main` dispatches on. The usage text and the dispatch
/// match are audited against this list by the `usage_audit` tests, so the
/// three can never drift apart silently.
const SUBCOMMANDS: &[&str] = &[
    "batch",
    "profile",
    "trace-report",
    "trace-validate",
    "trace-diff",
    "bench-diff",
    "top",
    "history",
    "regress",
    "check",
    "explain",
];

const USAGE: &str = "\
usage: homc [--timeout <secs>] [--inject <phase:n[:kind]>] [--stats] \
[--trace <out.jsonl> | --trace-logical <out.jsonl>]\n\
\x20           [--progress <out.jsonl>] [--ledger <dir>] [--metrics-out <file>] \
[--artifacts-dir <dir>] [--evidence-dir <dir>] (<file.ml> | --suite [program])\n\
\x20      homc batch [--workers <n>] [--cache-dir <dir>] [--artifacts-dir <dir>] \
[--evidence-dir <dir>] [--trace-dir <dir>] [--logical]\n\
\x20                 [--timeout <secs>] [--watchdog <secs>] [--stats] [--json]\n\
\x20                 [--progress <out.jsonl>] [--ledger <dir>] [--metrics-out <file>]\n\
\x20                 [--inject-job <idx:panic|exhaust>]\n\
\x20                 [--inject-disk <torn:b|trunc:r|flipsum:r|flip:o>] [program|file ...]\n\
\x20      homc profile (<file.ml> | --suite [program]) [-o <out.folded>]\n\
\x20      homc trace-report <file.jsonl>\n\
\x20      homc trace-validate <file.jsonl>\n\
\x20      homc trace-diff <old.jsonl> <new.jsonl> [--threshold <n=r[:s]>]... [--gate]\n\
\x20      homc bench-diff <old.json> <new.json> [--threshold <n=r[:s]>]... [--gate]\n\
\x20      homc top <progress.jsonl> [--snapshot] [--interval <secs>]\n\
\x20      homc history <ledger-dir> [program]\n\
\x20      homc regress <ledger-dir> [--window <n>] [--ratio <r>] [--slack <ms>]\n\
\x20      homc check (<file.ml> | --suite [program]) --evidence-dir <dir>\n\
\x20      homc explain (<file.ml> | --suite <program>) [--evidence-dir <dir>] \
[--trace-logical <out.jsonl>]";

fn usage() -> ExitCode {
    eprintln!("{USAGE}");
    ExitCode::FAILURE
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        timeout: None,
        faults: FaultPlan::none(),
        suite: false,
        stats: false,
        trace: None,
        progress: None,
        ledger: None,
        metrics_out: None,
        artifacts_dir: None,
        evidence_dir: None,
        target: None,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--timeout" => {
                let v = args.get(i + 1).ok_or("--timeout needs a value")?;
                let secs: f64 = v
                    .parse()
                    .map_err(|_| format!("invalid --timeout value {v:?}"))?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err(format!("--timeout must be positive, got {v:?}"));
                }
                cli.timeout = Some(Duration::from_secs_f64(secs));
                i += 2;
            }
            "--inject" => {
                let v = args.get(i + 1).ok_or("--inject needs a value")?;
                let fault: Fault = v.parse().map_err(|e| format!("{e}"))?;
                cli.faults.push(fault);
                i += 2;
            }
            "--suite" => {
                cli.suite = true;
                i += 1;
            }
            "--stats" => {
                cli.stats = true;
                i += 1;
            }
            flag @ ("--trace" | "--trace-logical") => {
                let v = args
                    .get(i + 1)
                    .ok_or_else(|| format!("{flag} needs a path"))?;
                if cli.trace.is_some() {
                    return Err("at most one of --trace/--trace-logical".to_string());
                }
                cli.trace = Some((v.clone(), flag == "--trace-logical"));
                i += 2;
            }
            flag @ ("--progress" | "--ledger" | "--metrics-out" | "--artifacts-dir"
            | "--evidence-dir") => {
                let v = args
                    .get(i + 1)
                    .ok_or_else(|| format!("{flag} needs a path"))?;
                let slot = match flag {
                    "--progress" => &mut cli.progress,
                    "--ledger" => &mut cli.ledger,
                    "--artifacts-dir" => &mut cli.artifacts_dir,
                    "--evidence-dir" => &mut cli.evidence_dir,
                    _ => &mut cli.metrics_out,
                };
                *slot = Some(v.clone());
                i += 2;
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}")),
            other => {
                if cli.target.is_some() {
                    return Err(format!("unexpected extra argument {other:?}"));
                }
                cli.target = Some(other.to_string());
                i += 1;
            }
        }
    }
    Ok(cli)
}

/// `homc trace-validate <file.jsonl>`: every line must parse and satisfy the
/// event schema; exit non-zero (with the first offending line) otherwise.
fn cmd_trace_validate(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("homc: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match validate_trace(&text) {
        Ok(n) => {
            say(format_args!("{path}: {n} events, schema-valid"));
            ExitCode::SUCCESS
        }
        Err((line, e)) => {
            eprintln!("homc: {path}:{line}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `homc trace-report <file.jsonl>`: per-run iteration timeline plus the
/// top-k hottest SMT queries.
fn cmd_trace_report(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("homc: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    say(format_args!("{}", render_report(&text).trim_end()));
    ExitCode::SUCCESS
}

/// `homc trace-diff` / `homc bench-diff`: compare two runs, exit by
/// severity (0 clean, 1 threshold breach, 2 verdict flip, 3 incomparable).
fn cmd_diff(kind: &str, args: &[String]) -> ExitCode {
    let mut opts = DiffOptions::default();
    let mut paths: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--gate" => {
                opts.gate = true;
                i += 1;
            }
            "--threshold" => {
                let Some(v) = args.get(i + 1) else {
                    eprintln!("homc: --threshold needs a value");
                    return usage();
                };
                match parse_threshold(v) {
                    Ok(rule) => opts.thresholds.push(rule),
                    Err(e) => {
                        eprintln!("homc: {e}");
                        return ExitCode::FAILURE;
                    }
                }
                i += 2;
            }
            flag if flag.starts_with("--") => {
                eprintln!("homc: unknown {kind} flag {flag}");
                return usage();
            }
            other => {
                paths.push(other.to_string());
                i += 1;
            }
        }
    }
    let [old_path, new_path] = paths.as_slice() else {
        eprintln!("homc: {kind} needs exactly two input files");
        return usage();
    };
    let read = |p: &String| match std::fs::read_to_string(p) {
        Ok(t) => Some(t),
        Err(e) => {
            eprintln!("homc: cannot read {p}: {e}");
            None
        }
    };
    let (Some(old), Some(new)) = (read(old_path), read(new_path)) else {
        return ExitCode::from(3);
    };
    let report = match kind {
        "trace-diff" => trace_diff(&old, &new, &opts),
        _ => bench_diff(&old, &new, &opts),
    };
    if let Some(why) = &report.incompatible {
        eprintln!("homc: {kind}: {why}");
    }
    let text = report.text.trim_end();
    if !text.is_empty() {
        say(format_args!("{text}"));
    }
    ExitCode::from(report.exit_code())
}

/// `homc profile`: verify under an in-memory wall-clock tracer, fold the
/// span events into flamegraph-compatible stacks, and verify telescoping.
fn cmd_profile(args: &[String]) -> ExitCode {
    let mut out_path: Option<String> = None;
    let mut suite_mode = false;
    let mut target: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "-o" => {
                let Some(v) = args.get(i + 1) else {
                    eprintln!("homc: -o needs a path");
                    return usage();
                };
                out_path = Some(v.clone());
                i += 2;
            }
            "--suite" => {
                suite_mode = true;
                i += 1;
            }
            flag if flag.starts_with("--") => {
                eprintln!("homc: unknown profile flag {flag}");
                return usage();
            }
            other => {
                if target.is_some() {
                    eprintln!("homc: unexpected extra argument {other:?}");
                    return usage();
                }
                target = Some(other.to_string());
                i += 1;
            }
        }
    }
    // Wall clock (the profiler needs real durations), one abstraction
    // thread (clean span nesting), events buffered in memory.
    let tracer = Tracer::memory(false);
    let mut opts = VerifierOptions {
        tracer: tracer.clone(),
        ..VerifierOptions::default()
    };
    opts.abs.threads = 1;
    if suite_mode {
        let filter = target;
        let mut matched = false;
        for p in suite::SUITE {
            if let Some(f) = &filter {
                if p.name != f {
                    continue;
                }
            }
            matched = true;
            run_one(p.name, p.source, Some(p.expected), &opts, false);
        }
        if !matched {
            eprintln!(
                "homc: no suite program named {:?}",
                filter.as_deref().unwrap_or("")
            );
            return ExitCode::FAILURE;
        }
    } else {
        let Some(path) = target else {
            return usage();
        };
        let src = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("homc: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if run_one(&path, &src, None, &opts, false).status == RunStatus::Failed {
            return ExitCode::FAILURE;
        }
    }
    let trace_text = tracer.snapshot().unwrap_or_default();
    let profile = fold_trace(&trace_text);
    say(format_args!("{}", profile.render_tree().trim_end()));
    if let Err(e) = profile.check_telescoping() {
        eprintln!("homc: profile: {e}");
        return ExitCode::FAILURE;
    }
    let folded = profile.folded();
    if let Err(e) = validate_folded(&folded) {
        eprintln!("homc: profile: malformed folded output: {e}");
        return ExitCode::FAILURE;
    }
    if let Some(out) = out_path {
        if let Err(e) = std::fs::write(&out, &folded) {
            eprintln!("homc: cannot write {out}: {e}");
            return ExitCode::FAILURE;
        }
        say(format_args!(
            "wrote {} folded stack(s) to {out}",
            folded.lines().count()
        ));
    }
    ExitCode::SUCCESS
}

/// Writes the metrics registry in Prometheus text exposition format.
/// Best-effort by design: a failed dump warns on stderr but never changes
/// the exit code of the run that produced it.
fn write_metrics_out(path: &str, metrics: &Metrics) {
    if let Err(e) = std::fs::write(path, metrics.snapshot().render_prometheus()) {
        eprintln!("homc: cannot write --metrics-out {path}: {e}");
    }
}

/// Appends one run's records to the ledger. Ledger trouble is reported but
/// never changes the run's exit code: observability must not fail the run
/// it observes.
fn append_ledger(dir: &str, kind: &str, mut records: Vec<RunRecord>) {
    if records.is_empty() {
        return;
    }
    // Narration goes to stderr so `--json` stdout stays a pure document.
    match Ledger::new(dir).append(kind, &mut records) {
        Ok(r) => eprintln!(
            "homc: ledger: run {} ({} record(s)) -> {}",
            r.run,
            r.records,
            r.path.display()
        ),
        Err(e) => eprintln!("homc: ledger append failed: {e}"),
    }
}

/// Loads a ledger directory, narrating quarantines/stale segments on
/// stderr (they are diagnostics, not data).
fn load_ledger(dir: &str) -> Option<Vec<RunRecord>> {
    match Ledger::new(dir).load() {
        Ok((records, load)) => {
            if load.quarantined > 0 || load.stale > 0 || load.bad_records > 0 {
                eprintln!("homc: ledger: {load}");
            }
            Some(records)
        }
        Err(e) => {
            eprintln!("homc: cannot load ledger {dir}: {e}");
            None
        }
    }
}

/// `homc top <progress.jsonl>`: render a live fleet view of a `--progress`
/// stream. `--snapshot` renders the current state once (deterministic, for
/// tests and scripts); otherwise the screen is redrawn every `--interval`
/// seconds until the stream carries `batch_end`.
fn cmd_top(args: &[String]) -> ExitCode {
    let mut snapshot = false;
    let mut interval = Duration::from_millis(500);
    let mut path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--snapshot" => {
                snapshot = true;
                i += 1;
            }
            "--interval" => {
                let Some(v) = args.get(i + 1) else {
                    eprintln!("homc: --interval needs a value");
                    return usage();
                };
                match v.parse::<f64>() {
                    Ok(s) if s.is_finite() && s > 0.0 => interval = Duration::from_secs_f64(s),
                    _ => {
                        eprintln!("homc: --interval must be positive seconds, got {v:?}");
                        return ExitCode::FAILURE;
                    }
                }
                i += 2;
            }
            flag if flag.starts_with("--") => {
                eprintln!("homc: unknown top flag {flag}");
                return usage();
            }
            other => {
                if path.is_some() {
                    eprintln!("homc: unexpected extra argument {other:?}");
                    return usage();
                }
                path = Some(other.to_string());
                i += 1;
            }
        }
    }
    let Some(path) = path else {
        return usage();
    };
    loop {
        let stream = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("homc: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if snapshot {
            say(format_args!("{}", render_top(&stream).trim_end()));
            return ExitCode::SUCCESS;
        }
        // Home + clear-to-end, then the frame: plain ANSI, no terminal
        // library. A dumb pipe just sees the frames separated by escapes.
        let mut out = std::io::stdout();
        let _ = write!(out, "\x1b[H\x1b[2J{}", render_top(&stream));
        let _ = out.flush();
        if progress_complete(&stream) {
            return ExitCode::SUCCESS;
        }
        std::thread::sleep(interval);
    }
}

/// `homc history <ledger-dir> [program]`: per-program latency/verdict
/// trends across every recorded run.
fn cmd_history(args: &[String]) -> ExitCode {
    let (Some(dir), filter) = (args.first(), args.get(1)) else {
        return usage();
    };
    if args.len() > 2 {
        eprintln!("homc: history takes at most a ledger dir and a program filter");
        return usage();
    }
    let Some(records) = load_ledger(dir) else {
        return ExitCode::FAILURE;
    };
    say(format_args!(
        "{}",
        render_history(&records, filter.map(String::as_str)).trim_end()
    ));
    ExitCode::SUCCESS
}

/// `homc regress <ledger-dir>`: gate the newest ledger run against the
/// trailing-window median baseline. Exit codes mirror `bench-diff`:
/// 0 clean, 1 latency breach, 2 verdict flip, 3 incompatible ledger.
fn cmd_regress(args: &[String]) -> ExitCode {
    let mut opts = TrendOptions::default();
    let mut dir: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            flag @ ("--window" | "--ratio" | "--slack") => {
                let Some(v) = args.get(i + 1) else {
                    eprintln!("homc: {flag} needs a value");
                    return usage();
                };
                let bad = |what: &str| {
                    eprintln!("homc: {flag} must be {what}, got {v:?}");
                    ExitCode::FAILURE
                };
                match flag {
                    "--window" => match v.parse::<usize>() {
                        Ok(n) if n > 0 => opts.window = n,
                        _ => return bad("a positive integer"),
                    },
                    "--ratio" => match v.parse::<f64>() {
                        Ok(r) if r.is_finite() && r > 0.0 => opts.ratio = r,
                        _ => return bad("a positive number"),
                    },
                    _ => match v.parse::<u64>() {
                        Ok(ms) => opts.slack_us = ms.saturating_mul(1000),
                        Err(_) => return bad("milliseconds"),
                    },
                }
                i += 2;
            }
            flag if flag.starts_with("--") => {
                eprintln!("homc: unknown regress flag {flag}");
                return usage();
            }
            other => {
                if dir.is_some() {
                    eprintln!("homc: unexpected extra argument {other:?}");
                    return usage();
                }
                dir = Some(other.to_string());
                i += 1;
            }
        }
    }
    let Some(dir) = dir else {
        return usage();
    };
    let Some(records) = load_ledger(&dir) else {
        return ExitCode::from(3);
    };
    let report = regress(&records, &opts);
    say(format_args!("{}", report.text.trim_end()));
    ExitCode::from(report.exit_code())
}

/// Shared target resolution for `check`/`explain`: suite names (all of the
/// suite, or one filtered program) or a readable source file. Each entry is
/// `(key, source)` where the key matches what a verifying run with
/// `--evidence-dir` published under.
fn resolve_targets(
    suite_mode: bool,
    target: Option<&str>,
) -> Result<Vec<(String, String)>, String> {
    if suite_mode {
        let picked: Vec<(String, String)> = suite::SUITE
            .iter()
            .filter(|p| target.is_none_or(|f| p.name == f))
            .map(|p| (p.name.to_string(), p.source.to_string()))
            .collect();
        if picked.is_empty() {
            return Err(format!(
                "no suite program named {:?}",
                target.unwrap_or("")
            ));
        }
        Ok(picked)
    } else {
        let Some(path) = target else {
            return Err("check/explain need a source file or --suite".to_string());
        };
        let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        Ok(vec![(path.to_string(), src)])
    }
}

/// `homc check`: re-establish verdicts from exported evidence, without the
/// CEGAR/SMT search path. Every certificate is validated independently —
/// proofs re-verified by arithmetic, the invariant re-closed, unsafe
/// witnesses replayed through the interpreter. A full-suite sweep tolerates
/// programs with no evidence on disk (an undecided run exports none); an
/// explicitly named target must have evidence. Exit is non-zero on any
/// failed (or quarantined) certificate.
fn cmd_check(args: &[String]) -> ExitCode {
    let mut evidence_dir: Option<String> = None;
    let mut suite_mode = false;
    let mut target: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--evidence-dir" => {
                let Some(v) = args.get(i + 1) else {
                    eprintln!("homc: --evidence-dir needs a path");
                    return usage();
                };
                evidence_dir = Some(v.clone());
                i += 2;
            }
            "--suite" => {
                suite_mode = true;
                i += 1;
            }
            flag if flag.starts_with("--") => {
                eprintln!("homc: unknown check flag {flag}");
                return usage();
            }
            other => {
                if target.is_some() {
                    eprintln!("homc: unexpected extra argument {other:?}");
                    return usage();
                }
                target = Some(other.to_string());
                i += 1;
            }
        }
    }
    let Some(dir) = evidence_dir else {
        eprintln!("homc: check needs --evidence-dir <dir>");
        return usage();
    };
    let targets = match resolve_targets(suite_mode, target.as_deref()) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("homc: {e}");
            return ExitCode::FAILURE;
        }
    };
    // A full-suite sweep may legitimately skip evidence-less programs; an
    // explicitly named target may not.
    let explicit = !suite_mode || target.is_some();
    let store = EvidenceStore::new(dir.as_str());
    let (mut passed, mut failed, mut missing) = (0usize, 0usize, 0usize);
    for (key, src) in &targets {
        let t = Instant::now();
        let line = match store.load(key) {
            Err(e) => {
                failed += 1;
                format!("fail (evidence store: {e})")
            }
            Ok(load) if load.quarantined => {
                failed += 1;
                "fail (evidence quarantined: integrity violation)".to_string()
            }
            Ok(load) => match load.evidence {
                None => {
                    missing += 1;
                    "no evidence".to_string()
                }
                Some(ev) => match check_evidence(src, &ev, &Metrics::disabled()) {
                    Ok(rep) if rep.claimed == "safe" => {
                        passed += 1;
                        format!(
                            "pass (safe: {} proof(s), {} typing(s){})",
                            rep.proofs_verified,
                            rep.invariant_typings,
                            if rep.unproved > 0 {
                                format!(", {} unproved", rep.unproved)
                            } else {
                                String::new()
                            },
                        )
                    }
                    Ok(_) => {
                        passed += 1;
                        "pass (unsafe: counterexample replays to fail)".to_string()
                    }
                    Err(e) => {
                        failed += 1;
                        format!("fail ({e})")
                    }
                },
            },
        };
        say(format_args!(
            "{key:12} check={} -> {line}",
            fmt_d(t.elapsed())
        ));
    }
    say(format_args!(
        "checked: {passed} pass, {failed} fail, {missing} missing"
    ));
    if failed > 0 || (missing > 0 && explicit) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// `homc explain`: verify one program with evidence capture and render the
/// human narrative — verdict and certificate summary, per-iteration
/// predicate provenance, dead-predicate census, heaviest refuted queries.
/// The narrative is a pure function of the evidence, so two runs of the
/// same build render byte-identically (the tier-1 determinism smoke).
fn cmd_explain(args: &[String]) -> ExitCode {
    let mut evidence_dir: Option<String> = None;
    let mut suite_mode = false;
    let mut target: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            flag @ ("--evidence-dir" | "--trace-logical") => {
                let Some(v) = args.get(i + 1) else {
                    eprintln!("homc: {flag} needs a path");
                    return usage();
                };
                if flag == "--evidence-dir" {
                    evidence_dir = Some(v.clone());
                } else {
                    trace_out = Some(v.clone());
                }
                i += 2;
            }
            "--suite" => {
                suite_mode = true;
                i += 1;
            }
            flag if flag.starts_with("--") => {
                eprintln!("homc: unknown explain flag {flag}");
                return usage();
            }
            other => {
                if target.is_some() {
                    eprintln!("homc: unexpected extra argument {other:?}");
                    return usage();
                }
                target = Some(other.to_string());
                i += 1;
            }
        }
    }
    if suite_mode && target.is_none() {
        eprintln!("homc: explain --suite needs one program name");
        return usage();
    }
    let mut targets = match resolve_targets(suite_mode, target.as_deref()) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("homc: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (key, source) = targets.remove(0);
    let tracer = match &trace_out {
        None => Tracer::disabled(),
        Some(path) => match Tracer::to_file(std::path::Path::new(path), true) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("homc: cannot open trace file {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
    };
    let opts = VerifierOptions {
        tracer: tracer.clone(),
        evidence: Some(EvidenceConfig {
            dir: evidence_dir.map(Into::into),
            key: key.clone(),
            source_hash: stable_hash64(&source),
        }),
        ..VerifierOptions::default()
    };
    let out = match verify(&source, &opts) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("homc: {key}: error: {e}");
            return ExitCode::FAILURE;
        }
    };
    tracer.flush();
    match out.evidence {
        Some(ev) => {
            print!("{}", render_explain(&ev, out.stats.preds_dead));
            let _ = std::io::stdout().flush();
            ExitCode::SUCCESS
        }
        None => {
            let v = match &out.verdict {
                Verdict::Unknown { reason } => format!("unknown ({reason})"),
                _ => "decisive but evidence-less".to_string(),
            };
            eprintln!("homc: explain: no evidence to narrate — verdict {v}");
            ExitCode::FAILURE
        }
    }
}

/// `homc batch`: the crash-safe fleet runner. Every job gets exactly one
/// report line; the exit code reflects only *failed* (wrong-verdict) jobs.
fn cmd_batch(args: &[String]) -> ExitCode {
    let mut opts = BatchOptions::default();
    let mut targets: Vec<String> = Vec::new();
    let mut stats_on = false;
    let mut json = false;
    let mut progress_path: Option<String> = None;
    let mut ledger_dir: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        let need = |flag: &str| format!("homc: {flag} needs a value");
        match args[i].as_str() {
            "--workers" => {
                let Some(v) = args.get(i + 1) else {
                    eprintln!("{}", need("--workers"));
                    return usage();
                };
                match v.parse::<usize>() {
                    Ok(n) if n > 0 => opts.workers = n,
                    _ => {
                        eprintln!("homc: --workers must be a positive integer, got {v:?}");
                        return ExitCode::FAILURE;
                    }
                }
                i += 2;
            }
            "--cache-dir" => {
                let Some(v) = args.get(i + 1) else {
                    eprintln!("{}", need("--cache-dir"));
                    return usage();
                };
                opts.cache_dir = Some(std::path::PathBuf::from(v));
                i += 2;
            }
            "--artifacts-dir" => {
                let Some(v) = args.get(i + 1) else {
                    eprintln!("{}", need("--artifacts-dir"));
                    return usage();
                };
                opts.artifacts_dir = Some(std::path::PathBuf::from(v));
                i += 2;
            }
            "--trace-dir" => {
                let Some(v) = args.get(i + 1) else {
                    eprintln!("{}", need("--trace-dir"));
                    return usage();
                };
                opts.trace_dir = Some(std::path::PathBuf::from(v));
                i += 2;
            }
            "--evidence-dir" => {
                let Some(v) = args.get(i + 1) else {
                    eprintln!("{}", need("--evidence-dir"));
                    return usage();
                };
                opts.evidence_dir = Some(std::path::PathBuf::from(v));
                i += 2;
            }
            "--logical" => {
                opts.logical = true;
                i += 1;
            }
            flag @ ("--timeout" | "--watchdog") => {
                let Some(v) = args.get(i + 1) else {
                    eprintln!("{}", need(flag));
                    return usage();
                };
                let secs: f64 = match v.parse() {
                    Ok(s) => s,
                    Err(_) => {
                        eprintln!("homc: invalid {flag} value {v:?}");
                        return ExitCode::FAILURE;
                    }
                };
                if !secs.is_finite() || secs <= 0.0 {
                    eprintln!("homc: {flag} must be positive, got {v:?}");
                    return ExitCode::FAILURE;
                }
                let d = Duration::from_secs_f64(secs);
                if flag == "--timeout" {
                    opts.verify.timeout = Some(d);
                } else {
                    opts.watchdog = Some(d);
                }
                i += 2;
            }
            "--inject-job" => {
                let Some(v) = args.get(i + 1) else {
                    eprintln!("{}", need("--inject-job"));
                    return usage();
                };
                match v.parse::<JobFault>() {
                    Ok(f) => opts.job_faults.push(f),
                    Err(e) => {
                        eprintln!("homc: {e}");
                        return ExitCode::FAILURE;
                    }
                }
                i += 2;
            }
            "--inject-disk" => {
                let Some(v) = args.get(i + 1) else {
                    eprintln!("{}", need("--inject-disk"));
                    return usage();
                };
                match v.parse::<DiskFault>() {
                    Ok(f) => opts.disk_fault = Some(f),
                    Err(e) => {
                        eprintln!("homc: {e}");
                        return ExitCode::FAILURE;
                    }
                }
                i += 2;
            }
            "--stats" => {
                stats_on = true;
                i += 1;
            }
            "--json" => {
                json = true;
                i += 1;
            }
            flag @ ("--progress" | "--ledger" | "--metrics-out") => {
                let Some(v) = args.get(i + 1) else {
                    eprintln!("{}", need(flag));
                    return usage();
                };
                let slot = match flag {
                    "--progress" => &mut progress_path,
                    "--ledger" => &mut ledger_dir,
                    _ => &mut metrics_out,
                };
                *slot = Some(v.clone());
                i += 2;
            }
            flag if flag.starts_with("--") => {
                eprintln!("homc: unknown batch flag {flag}");
                return usage();
            }
            other => {
                targets.push(other.to_string());
                i += 1;
            }
        }
    }
    // No targets: the whole Table 1 suite. Otherwise each target is a suite
    // program name or a source file path.
    let mut jobs: Vec<BatchJob> = Vec::new();
    if targets.is_empty() {
        for p in suite::SUITE {
            jobs.push(BatchJob {
                name: p.name.to_string(),
                source: p.source.to_string(),
                expected: Some(p.expected),
            });
        }
    } else {
        for t in &targets {
            if let Some(p) = suite::find(t) {
                jobs.push(BatchJob {
                    name: p.name.to_string(),
                    source: p.source.to_string(),
                    expected: Some(p.expected),
                });
            } else {
                match std::fs::read_to_string(t) {
                    Ok(src) => jobs.push(BatchJob {
                        name: t.clone(),
                        source: src,
                        expected: None,
                    }),
                    Err(e) => {
                        eprintln!(
                            "homc: {t:?} is neither a suite program nor a readable file: {e}"
                        );
                        return ExitCode::FAILURE;
                    }
                }
            }
        }
    }
    // Flags are order-insensitive: metrics and progress sinks are built
    // only after the whole command line (notably --logical) is parsed.
    if stats_on || metrics_out.is_some() {
        opts.verify.metrics = Metrics::new(opts.logical);
    }
    if let Some(p) = &progress_path {
        opts.progress = match Tracer::to_file(std::path::Path::new(p), opts.logical) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("homc: cannot open progress file {p}: {e}");
                return ExitCode::FAILURE;
            }
        };
    }
    let report = match run_batch(jobs, &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("homc: batch: {e}");
            return ExitCode::FAILURE;
        }
    };
    if json {
        // Machine mode: stdout carries exactly one JSON document.
        print!("{}", render_batch_json(&report, opts.workers, opts.logical));
        let _ = std::io::stdout().flush();
    } else {
        for j in &report.jobs {
            let retried = if j.attempts > 1 {
                format!(
                    "  (attempts={}{})",
                    j.attempts,
                    match &j.retry_detail {
                        Some(d) => format!(", retried after {d}"),
                        None => String::new(),
                    }
                )
            } else {
                String::new()
            };
            let evidence = match j.check {
                Some(true) => "  evidence=ok",
                Some(false) => "  evidence=FAIL",
                None => "",
            };
            say(format_args!(
                "{:12} wall={} -> {}{}{}{}",
                j.name,
                fmt_d(j.wall),
                j.verdict,
                if j.status == JobStatus::Failed {
                    "  ** UNEXPECTED **"
                } else {
                    ""
                },
                evidence,
                retried,
            ));
        }
        say(format_args!(
            "passed {}, failed {}, unknown {}  ({} jobs, {} workers)",
            report.passed,
            report.failed,
            report.unknown,
            report.jobs.len(),
            opts.workers,
        ));
        if let Some(load) = &report.load {
            say(format_args!(
                "cache load: {load}  disk hits {}",
                report.disk_hits
            ));
        }
        if let Some(p) = &report.publish {
            say(format_args!(
                "cache publish: {} record(s), {} bytes -> {}",
                p.records,
                p.bytes,
                p.path.display()
            ));
        }
        if stats_on {
            let rendered = opts.verify.metrics.snapshot().render("  ");
            if !rendered.is_empty() {
                say(format_args!("{}", rendered.trim_end()));
            }
        }
    }
    if let Some(dir) = &ledger_dir {
        let records: Vec<RunRecord> = report
            .jobs
            .iter()
            .map(|j| {
                let mut r = ledger_record(
                    &j.name,
                    &j.verdict,
                    j.status == JobStatus::Passed,
                    j.wall.as_micros() as u64,
                    j.stats.as_ref(),
                    j.trace.as_deref(),
                );
                if let Some(ok) = j.check {
                    r.counters
                        .insert("evidence_check_pass".to_string(), u64::from(ok));
                }
                r
            })
            .collect();
        append_ledger(dir, "batch", records);
    }
    if let Some(path) = &metrics_out {
        write_metrics_out(path, &opts.verify.metrics);
    }
    if report.failed == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return usage();
    }
    match args[0].as_str() {
        "trace-validate" => {
            let Some(path) = args.get(1) else {
                return usage();
            };
            return cmd_trace_validate(path);
        }
        "trace-report" => {
            let Some(path) = args.get(1) else {
                return usage();
            };
            return cmd_trace_report(path);
        }
        kind @ ("trace-diff" | "bench-diff") => {
            return cmd_diff(kind, &args[1..]);
        }
        "profile" => {
            return cmd_profile(&args[1..]);
        }
        "batch" => {
            return cmd_batch(&args[1..]);
        }
        "top" => {
            return cmd_top(&args[1..]);
        }
        "history" => {
            return cmd_history(&args[1..]);
        }
        "regress" => {
            return cmd_regress(&args[1..]);
        }
        "check" => {
            return cmd_check(&args[1..]);
        }
        "explain" => {
            return cmd_explain(&args[1..]);
        }
        _ => {}
    }
    debug_assert!(
        !SUBCOMMANDS.contains(&args[0].as_str()),
        "subcommand {:?} listed but not dispatched",
        args[0]
    );
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("homc: {e}");
            return usage();
        }
    };
    let tracer = match &cli.trace {
        None => Tracer::disabled(),
        Some((path, logical)) => match Tracer::to_file(std::path::Path::new(path), *logical) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("homc: cannot open trace file {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
    };
    // The progress sink is separate from the job tracer by construction:
    // that separation is what keeps --trace-logical streams byte-identical
    // with progress on or off. It inherits the job tracer's clock so a
    // logical run stays deterministic end to end.
    let progress = match &cli.progress {
        None => Tracer::disabled(),
        Some(path) => match Tracer::to_file(std::path::Path::new(path), tracer.is_logical()) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("homc: cannot open progress file {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
    };
    // The budget (deadline + fault plan) is per program: each run_one call
    // builds a fresh Budget from these options. The metrics registry only
    // exists when --stats or --metrics-out will render it; under a logical
    // tracer it zeroes durations so the run stays reproducible.
    let metrics = if cli.stats || cli.metrics_out.is_some() {
        Metrics::new(tracer.is_logical())
    } else {
        Metrics::disabled()
    };
    let opts = VerifierOptions {
        timeout: cli.timeout,
        faults: cli.faults.clone(),
        tracer: tracer.clone(),
        metrics,
        progress: progress.clone(),
        ..VerifierOptions::default()
    };

    if cli.suite {
        let filter = cli.target;
        let programs: Vec<_> = suite::SUITE
            .iter()
            .filter(|p| filter.as_deref().is_none_or(|f| p.name == f))
            .collect();
        if programs.is_empty() {
            eprintln!(
                "homc: no suite program named {:?}",
                filter.as_deref().unwrap_or("")
            );
            return ExitCode::FAILURE;
        }
        // The suite is a fleet of one worker: frame it like a batch so the
        // progress stream replays in `homc top`.
        progress.emit("batch_start", |e| {
            e.num("jobs", programs.len() as u64).num("workers", 1).str(
                "clock",
                if progress.is_logical() {
                    "logical"
                } else {
                    "wall"
                },
            );
        });
        for (i, p) in programs.iter().enumerate() {
            progress.emit("job_queued", |e| {
                e.num("job", i as u64).str("name", p.name);
            });
        }
        let suite_start = Instant::now();
        let (mut passed, mut failed, mut unknown) = (0usize, 0usize, 0usize);
        let mut wall = Duration::ZERO;
        let mut totals = VerifyStats::default();
        let mut ledger_records: Vec<RunRecord> = Vec::new();
        for (i, p) in programs.iter().enumerate() {
            let mut per = opts.clone();
            per.job = i as u64;
            per.artifacts = cli.artifacts_dir.as_ref().map(|dir| ArtifactConfig {
                dir: dir.into(),
                key: p.name.to_string(),
            });
            per.evidence = cli.evidence_dir.as_ref().map(|dir| EvidenceConfig {
                dir: Some(dir.into()),
                key: p.name.to_string(),
                source_hash: stable_hash64(p.source),
            });
            let report = run_one(p.name, p.source, Some(p.expected), &per, cli.stats);
            emit_settlement(&progress, i as u64, p.name, &report);
            match report.status {
                RunStatus::Passed => passed += 1,
                RunStatus::Failed => failed += 1,
                RunStatus::Unknown => unknown += 1,
            }
            wall += report.wall;
            if cli.ledger.is_some() {
                ledger_records.push(ledger_record(
                    p.name,
                    &report.verdict,
                    report.status == RunStatus::Passed,
                    report.wall.as_micros() as u64,
                    report.stats.as_ref(),
                    None,
                ));
            }
            if let Some(s) = report.stats {
                totals.smt_queries += s.smt_queries;
                totals.cache_hits += s.cache_hits;
                totals.cache_misses += s.cache_misses;
                totals.worklist_pops += s.worklist_pops;
                totals.rescans_avoided += s.rescans_avoided;
                totals.cuts_sliced += s.cuts_sliced;
                totals.cert_reuse_hits += s.cert_reuse_hits;
                totals.fm_prefix_hits += s.fm_prefix_hits;
                totals.abs_defs_reused += s.abs_defs_reused;
                totals.abs_defs_rebuilt += s.abs_defs_rebuilt;
                totals.abs_implicants += s.abs_implicants;
                totals.abs_queries_saved += s.abs_queries_saved;
                totals.abs_ctx_truncated += s.abs_ctx_truncated;
                totals.reverify_defs_skipped += s.reverify_defs_skipped;
                totals.reverify_preds_seeded += s.reverify_preds_seeded;
                totals.artifact_quarantine += s.artifact_quarantine;
                totals.preds_dead += s.preds_dead;
            }
        }
        progress.emit("batch_end", |e| {
            e.num("passed", passed as u64)
                .num("failed", failed as u64)
                .num("unknown", unknown as u64)
                .num("dur_us", progress.dur_us(suite_start));
        });
        progress.flush();
        say(format_args!(
            "passed {passed}, failed {failed}, unknown {unknown}  wall={}",
            fmt_d(wall)
        ));
        let lookups = totals.cache_hits + totals.cache_misses;
        let hit_rate = if lookups == 0 {
            0.0
        } else {
            100.0 * totals.cache_hits as f64 / lookups as f64
        };
        say(format_args!(
            "smt queries {}, cache hits {}/{} ({hit_rate:.0}%), worklist pops {}, rescans avoided {}",
            totals.smt_queries,
            totals.cache_hits,
            lookups,
            totals.worklist_pops,
            totals.rescans_avoided,
        ));
        say(format_args!(
            "refinement fast path: cuts sliced {}, cert reuse {}, fm prefix hits {}",
            totals.cuts_sliced, totals.cert_reuse_hits, totals.fm_prefix_hits,
        ));
        say(format_args!(
            "incremental abstraction: defs reused {}, rebuilt {}, implicants {}, \
             queries saved {}, ctx truncated {}, preds dead {}",
            totals.abs_defs_reused,
            totals.abs_defs_rebuilt,
            totals.abs_implicants,
            totals.abs_queries_saved,
            totals.abs_ctx_truncated,
            totals.preds_dead,
        ));
        if cli.artifacts_dir.is_some() {
            say(format_args!(
                "cross-run reverify: defs skipped {}, preds seeded {}, quarantined {}",
                totals.reverify_defs_skipped,
                totals.reverify_preds_seeded,
                totals.artifact_quarantine,
            ));
        }
        if let Some(dir) = &cli.ledger {
            append_ledger(dir, "suite", ledger_records);
        }
        if let Some(path) = &cli.metrics_out {
            write_metrics_out(path, &opts.metrics);
        }
        if failed == 0 {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        }
    } else {
        let Some(path) = cli.target else {
            return usage();
        };
        let src = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("homc: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        progress.emit("batch_start", |e| {
            e.num("jobs", 1).num("workers", 1).str(
                "clock",
                if progress.is_logical() {
                    "logical"
                } else {
                    "wall"
                },
            );
        });
        progress.emit("job_queued", |e| {
            e.num("job", 0).str("name", &path);
        });
        // A file is keyed by its path: re-running `homc <file>` after an
        // edit is exactly the warm diff-and-seed scenario.
        let mut opts = opts;
        opts.artifacts = cli.artifacts_dir.as_ref().map(|dir| ArtifactConfig {
            dir: dir.into(),
            key: path.clone(),
        });
        opts.evidence = cli.evidence_dir.as_ref().map(|dir| EvidenceConfig {
            dir: Some(dir.into()),
            key: path.clone(),
            source_hash: stable_hash64(&src),
        });
        let t = Instant::now();
        let report = run_one(&path, &src, None, &opts, cli.stats);
        emit_settlement(&progress, 0, &path, &report);
        progress.emit("batch_end", |e| {
            e.num("passed", u64::from(report.status == RunStatus::Passed))
                .num("failed", u64::from(report.status == RunStatus::Failed))
                .num("unknown", u64::from(report.status == RunStatus::Unknown))
                .num("dur_us", progress.dur_us(t));
        });
        progress.flush();
        if let Some(dir) = &cli.ledger {
            append_ledger(
                dir,
                "file",
                vec![ledger_record(
                    &path,
                    &report.verdict,
                    report.status == RunStatus::Passed,
                    report.wall.as_micros() as u64,
                    report.stats.as_ref(),
                    None,
                )],
            );
        }
        if let Some(p) = &cli.metrics_out {
            write_metrics_out(p, &opts.metrics);
        }
        match report.status {
            RunStatus::Failed => ExitCode::FAILURE,
            RunStatus::Passed | RunStatus::Unknown => ExitCode::SUCCESS,
        }
    }
}

#[cfg(test)]
mod usage_audit {
    use super::{SUBCOMMANDS, USAGE};

    /// Forward direction: every dispatched subcommand is documented.
    #[test]
    fn every_subcommand_is_in_the_usage_text() {
        for cmd in SUBCOMMANDS {
            assert!(
                USAGE.contains(&format!("homc {cmd} ")),
                "subcommand {cmd:?} missing from the usage text"
            );
        }
    }

    /// Reverse direction: every `homc <word>` the usage text advertises is
    /// actually dispatched. Together with the forward test (and the
    /// debug_assert in main over the same const), renaming or removing a
    /// subcommand without updating the usage string fails the build's tests
    /// instead of shipping stale help.
    #[test]
    fn every_advertised_subcommand_is_dispatched() {
        let mut advertised = Vec::new();
        for line in USAGE.lines() {
            let mut words = line.split_whitespace().skip_while(|w| *w != "homc");
            let (Some(_), Some(next)) = (words.next(), words.next()) else {
                continue;
            };
            // `homc [--timeout ...]` is the main mode, not a subcommand.
            if !next.starts_with(['-', '[', '(', '<']) {
                advertised.push(next.to_string());
            }
        }
        assert!(!advertised.is_empty(), "usage text lost its homc lines");
        for cmd in &advertised {
            assert!(
                SUBCOMMANDS.contains(&cmd.as_str()),
                "usage advertises {cmd:?} but main() does not dispatch it"
            );
        }
        // The audit is meaningful only if it sees every subcommand.
        for cmd in SUBCOMMANDS {
            assert!(
                advertised.iter().any(|a| a == cmd),
                "usage line for {cmd:?} not parsed by the audit"
            );
        }
    }

    /// The cross-run artifact flag must be advertised for both modes that
    /// accept it (main and `batch`) and actually parsed by the main mode.
    #[test]
    fn artifacts_dir_flag_is_advertised_and_parsed() {
        assert!(
            USAGE.matches("--artifacts-dir").count() >= 2,
            "--artifacts-dir must appear in both the main and batch usage lines"
        );
        let cli = super::parse_args(&[
            "--artifacts-dir".to_string(),
            "store".to_string(),
            "prog.ml".to_string(),
        ])
        .expect("parses");
        assert_eq!(cli.artifacts_dir.as_deref(), Some("store"));
        assert_eq!(cli.target.as_deref(), Some("prog.ml"));
    }
}
