//! The `homc` command-line verifier.
//!
//! ```text
//! homc [options] <file.ml>       verify a source file
//! homc [options] --suite [name]  run the paper's Table 1 suite (or one program)
//! homc batch [batch-options] [program|file.ml ...]
//!                                   run many jobs through the work-stealing
//!                                   pool, each isolated under its own budget;
//!                                   failed/hung jobs degrade to `unknown`,
//!                                   never a process abort. With --cache-dir,
//!                                   SMT query results persist across runs in
//!                                   a versioned, checksummed segment store.
//! homc profile (<file.ml> | --suite [name]) [-o <out.folded>]
//!                                   self-profile: verify under a wall-clock
//!                                   tracer, fold the spans into
//!                                   flamegraph.pl-compatible stacks
//! homc trace-report <file.jsonl>    render a trace as a per-iteration timeline
//! homc trace-validate <file.jsonl>  check every line against the event schema
//! homc trace-diff <old.jsonl> <new.jsonl> [--threshold n=r[:s]]... [--gate]
//! homc bench-diff <old.json> <new.json>   [--threshold n=r[:s]]... [--gate]
//!                                   compare two runs; exit 1 on a threshold
//!                                   breach, 2 on a verdict flip, 3 when the
//!                                   inputs are incomparable
//!
//! options:
//!   --timeout <secs>      per-program wall-clock deadline (fractions allowed)
//!   --inject <phase:n[:kind]>  deterministically fail the n-th checkpoint of a
//!                         phase (abs|mc|feas|interp|smt); kind is error|panic
//!   --stats               print per-program effort counters (SMT queries,
//!                         query-cache hits/misses, worklist pops, rescans
//!                         avoided), peak heap bytes per phase, and the
//!                         metrics registry's histograms under each line
//!   --trace <file.jsonl>  write one JSON event per line: phase spans, one
//!                         record per CEGAR iteration, SMT solves, faults
//!   --trace-logical <file.jsonl>  same, under a logical clock (sequence
//!                         numbers instead of timestamps, durations zeroed):
//!                         byte-identical across runs and machines
//! ```
//!
//! Every program reports exactly one of `safe`, `unsafe`, or `unknown`; the
//! suite ends with a `passed/failed/unknown` tally and the exit code is
//! non-zero iff some program *failed* (wrong verdict or hard error) —
//! `unknown` under a tight budget is a reported outcome, not a failure.

use std::io::Write;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use homc::{
    bench_diff, fold_trace, parse_threshold, render_report, run_batch, suite, trace_diff,
    validate_folded, validate_trace, verify, BatchJob, BatchOptions, DiffOptions, DiskFault,
    Expected, Fault, FaultPlan, JobFault, JobStatus, Metrics, Tracer, Verdict, VerifierOptions,
    VerifyStats,
};

// The binary (not the library) installs the counting allocator: tests and
// downstream crates see a plain [`std::alloc::System`], so their golden
// traces never grow `peak_bytes` fields, while `homc` runs report real
// per-phase heap watermarks.
#[global_allocator]
static COUNTING_ALLOC: homc_metrics::mem::CountingAlloc = homc_metrics::mem::CountingAlloc::new();

fn fmt_d(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64())
}

/// Prints a report line, tolerating a closed stdout (`homc … | head` must
/// not panic on the broken pipe).
fn say(line: std::fmt::Arguments) {
    let _ = writeln!(std::io::stdout(), "{line}");
}

/// How one program's run is tallied.
#[derive(Clone, Copy, PartialEq, Eq)]
enum RunStatus {
    /// The verdict matched the expectation (or any decisive verdict, when
    /// there is no expectation).
    Passed,
    /// Wrong verdict or a hard error.
    Failed,
    /// The verifier gave up (budget, fault, inconclusive solver).
    Unknown,
}

/// What one program's run contributes to the suite tally.
struct RunReport {
    status: RunStatus,
    /// Wall-clock time for the whole run, including the front end (the
    /// per-phase `total` in [`VerifyStats`] covers only the CEGAR loop).
    wall: Duration,
    /// Effort counters, when verification produced an outcome at all.
    stats: Option<VerifyStats>,
}

fn run_one(
    name: &str,
    source: &str,
    expected: Option<Expected>,
    opts: &VerifierOptions,
    show_stats: bool,
) -> RunReport {
    let tracer = &opts.tracer;
    tracer.emit("run_start", |e| {
        e.str("name", name).str(
            "clock",
            if tracer.is_logical() { "logical" } else { "wall" },
        );
    });
    // The registry accumulates across the suite; the per-program report is
    // the delta against this pre-run snapshot.
    let metrics_before = opts.metrics.enabled().then(|| opts.metrics.snapshot());
    let t = Instant::now();
    let result = verify(source, opts);
    let wall = t.elapsed();
    let report = match result {
        Ok(out) => {
            let v = match &out.verdict {
                Verdict::Safe => "safe".to_string(),
                Verdict::Unsafe { .. } => "unsafe".to_string(),
                Verdict::Unknown { reason } => format!("unknown ({reason})"),
            };
            let status = match (&out.verdict, expected) {
                (Verdict::Unknown { .. }, _) => RunStatus::Unknown,
                (_, None) => RunStatus::Passed,
                (_, Some(Expected::Safe)) if out.verdict.is_safe() => RunStatus::Passed,
                (_, Some(Expected::Unsafe)) if out.verdict.is_unsafe() => RunStatus::Passed,
                (_, Some(Expected::Diverges)) if !out.verdict.is_unsafe() => RunStatus::Passed,
                _ => RunStatus::Failed,
            };
            say(format_args!(
                "{name:12} S={:4} O={} C={:2}  abst={} mc={} cegar={} total={} wall={}  -> {v}{}",
                out.size,
                out.order,
                out.stats.cycles,
                fmt_d(out.stats.abst),
                fmt_d(out.stats.mc),
                fmt_d(out.stats.cegar),
                fmt_d(out.stats.total),
                fmt_d(wall),
                if status == RunStatus::Failed {
                    "  ** UNEXPECTED **"
                } else {
                    ""
                },
            ));
            // An `unknown` run is precisely the one whose effort is worth
            // inspecting (what was it doing when the budget hit?), so its
            // partial counters are surfaced even without --stats.
            if show_stats || status == RunStatus::Unknown {
                say(format_args!(
                    "{:12} smt={} cache={}/{} worklist_pops={} rescans_avoided={} \
                     cuts_sliced={} cert_reuse={} fm_prefix={}",
                    "",
                    out.stats.smt_queries,
                    out.stats.cache_hits,
                    out.stats.cache_misses,
                    out.stats.worklist_pops,
                    out.stats.rescans_avoided,
                    out.stats.cuts_sliced,
                    out.stats.cert_reuse_hits,
                    out.stats.fm_prefix_hits,
                ));
                say(format_args!(
                    "{:12} abs_defs_reused={} abs_defs_rebuilt={} abs_implicants={} \
                     abs_queries_saved={} abs_ctx_truncated={}",
                    "",
                    out.stats.abs_defs_reused,
                    out.stats.abs_defs_rebuilt,
                    out.stats.abs_implicants,
                    out.stats.abs_queries_saved,
                    out.stats.abs_ctx_truncated,
                ));
            }
            if show_stats && out.stats.peak_bytes > 0 {
                say(format_args!(
                    "{:12} peak_bytes={} (abs={} mc={} feas={} interp={})",
                    "",
                    out.stats.peak_bytes,
                    out.stats.peak_abs_bytes,
                    out.stats.peak_mc_bytes,
                    out.stats.peak_feas_bytes,
                    out.stats.peak_interp_bytes,
                ));
            }
            if show_stats {
                if let Some(before) = &metrics_before {
                    let delta = opts.metrics.snapshot().delta(before);
                    let rendered = delta.render("             ");
                    if !rendered.is_empty() {
                        say(format_args!("{}", rendered.trim_end()));
                    }
                }
            }
            RunReport {
                status,
                wall,
                stats: Some(out.stats),
            }
        }
        Err(e) => {
            eprintln!("{name}: error: {e}");
            tracer.emit("fault", |ev| {
                ev.str("phase", "frontend")
                    .str("kind", "error")
                    .str("detail", &e.to_string());
            });
            RunReport {
                status: RunStatus::Failed,
                wall,
                stats: None,
            }
        }
    };
    tracer.emit("run_end", |e| {
        e.num("dur_us", tracer.dur_us(t));
    });
    tracer.flush();
    report
}

struct Cli {
    timeout: Option<Duration>,
    faults: FaultPlan,
    suite: bool,
    stats: bool,
    trace: Option<(String, bool)>,
    target: Option<String>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: homc [--timeout <secs>] [--inject <phase:n[:kind]>] [--stats] \
         [--trace <out.jsonl> | --trace-logical <out.jsonl>] (<file.ml> | --suite [program])\n\
         \x20      homc batch [--workers <n>] [--cache-dir <dir>] [--trace-dir <dir>] [--logical]\n\
         \x20                 [--timeout <secs>] [--watchdog <secs>] [--stats]\n\
         \x20                 [--inject-job <idx:panic|exhaust>]\n\
         \x20                 [--inject-disk <torn:b|trunc:r|flipsum:r|flip:o>] [program|file ...]\n\
         \x20      homc profile (<file.ml> | --suite [program]) [-o <out.folded>]\n\
         \x20      homc trace-report <file.jsonl>\n\
         \x20      homc trace-validate <file.jsonl>\n\
         \x20      homc trace-diff <old.jsonl> <new.jsonl> [--threshold <n=r[:s]>]... [--gate]\n\
         \x20      homc bench-diff <old.json> <new.json> [--threshold <n=r[:s]>]... [--gate]"
    );
    ExitCode::FAILURE
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        timeout: None,
        faults: FaultPlan::none(),
        suite: false,
        stats: false,
        trace: None,
        target: None,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--timeout" => {
                let v = args.get(i + 1).ok_or("--timeout needs a value")?;
                let secs: f64 = v
                    .parse()
                    .map_err(|_| format!("invalid --timeout value {v:?}"))?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err(format!("--timeout must be positive, got {v:?}"));
                }
                cli.timeout = Some(Duration::from_secs_f64(secs));
                i += 2;
            }
            "--inject" => {
                let v = args.get(i + 1).ok_or("--inject needs a value")?;
                let fault: Fault = v.parse().map_err(|e| format!("{e}"))?;
                cli.faults.push(fault);
                i += 2;
            }
            "--suite" => {
                cli.suite = true;
                i += 1;
            }
            "--stats" => {
                cli.stats = true;
                i += 1;
            }
            flag @ ("--trace" | "--trace-logical") => {
                let v = args.get(i + 1).ok_or_else(|| format!("{flag} needs a path"))?;
                if cli.trace.is_some() {
                    return Err("at most one of --trace/--trace-logical".to_string());
                }
                cli.trace = Some((v.clone(), flag == "--trace-logical"));
                i += 2;
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}")),
            other => {
                if cli.target.is_some() {
                    return Err(format!("unexpected extra argument {other:?}"));
                }
                cli.target = Some(other.to_string());
                i += 1;
            }
        }
    }
    Ok(cli)
}

/// `homc trace-validate <file.jsonl>`: every line must parse and satisfy the
/// event schema; exit non-zero (with the first offending line) otherwise.
fn cmd_trace_validate(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("homc: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match validate_trace(&text) {
        Ok(n) => {
            say(format_args!("{path}: {n} events, schema-valid"));
            ExitCode::SUCCESS
        }
        Err((line, e)) => {
            eprintln!("homc: {path}:{line}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `homc trace-report <file.jsonl>`: per-run iteration timeline plus the
/// top-k hottest SMT queries.
fn cmd_trace_report(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("homc: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    say(format_args!("{}", render_report(&text).trim_end()));
    ExitCode::SUCCESS
}

/// `homc trace-diff` / `homc bench-diff`: compare two runs, exit by
/// severity (0 clean, 1 threshold breach, 2 verdict flip, 3 incomparable).
fn cmd_diff(kind: &str, args: &[String]) -> ExitCode {
    let mut opts = DiffOptions::default();
    let mut paths: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--gate" => {
                opts.gate = true;
                i += 1;
            }
            "--threshold" => {
                let Some(v) = args.get(i + 1) else {
                    eprintln!("homc: --threshold needs a value");
                    return usage();
                };
                match parse_threshold(v) {
                    Ok(rule) => opts.thresholds.push(rule),
                    Err(e) => {
                        eprintln!("homc: {e}");
                        return ExitCode::FAILURE;
                    }
                }
                i += 2;
            }
            flag if flag.starts_with("--") => {
                eprintln!("homc: unknown {kind} flag {flag}");
                return usage();
            }
            other => {
                paths.push(other.to_string());
                i += 1;
            }
        }
    }
    let [old_path, new_path] = paths.as_slice() else {
        eprintln!("homc: {kind} needs exactly two input files");
        return usage();
    };
    let read = |p: &String| match std::fs::read_to_string(p) {
        Ok(t) => Some(t),
        Err(e) => {
            eprintln!("homc: cannot read {p}: {e}");
            None
        }
    };
    let (Some(old), Some(new)) = (read(old_path), read(new_path)) else {
        return ExitCode::from(3);
    };
    let report = match kind {
        "trace-diff" => trace_diff(&old, &new, &opts),
        _ => bench_diff(&old, &new, &opts),
    };
    if let Some(why) = &report.incompatible {
        eprintln!("homc: {kind}: {why}");
    }
    let text = report.text.trim_end();
    if !text.is_empty() {
        say(format_args!("{text}"));
    }
    ExitCode::from(report.exit_code())
}

/// `homc profile`: verify under an in-memory wall-clock tracer, fold the
/// span events into flamegraph-compatible stacks, and verify telescoping.
fn cmd_profile(args: &[String]) -> ExitCode {
    let mut out_path: Option<String> = None;
    let mut suite_mode = false;
    let mut target: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "-o" => {
                let Some(v) = args.get(i + 1) else {
                    eprintln!("homc: -o needs a path");
                    return usage();
                };
                out_path = Some(v.clone());
                i += 2;
            }
            "--suite" => {
                suite_mode = true;
                i += 1;
            }
            flag if flag.starts_with("--") => {
                eprintln!("homc: unknown profile flag {flag}");
                return usage();
            }
            other => {
                if target.is_some() {
                    eprintln!("homc: unexpected extra argument {other:?}");
                    return usage();
                }
                target = Some(other.to_string());
                i += 1;
            }
        }
    }
    // Wall clock (the profiler needs real durations), one abstraction
    // thread (clean span nesting), events buffered in memory.
    let tracer = Tracer::memory(false);
    let mut opts = VerifierOptions {
        tracer: tracer.clone(),
        ..VerifierOptions::default()
    };
    opts.abs.threads = 1;
    if suite_mode {
        let filter = target;
        let mut matched = false;
        for p in suite::SUITE {
            if let Some(f) = &filter {
                if p.name != f {
                    continue;
                }
            }
            matched = true;
            run_one(p.name, p.source, Some(p.expected), &opts, false);
        }
        if !matched {
            eprintln!(
                "homc: no suite program named {:?}",
                filter.as_deref().unwrap_or("")
            );
            return ExitCode::FAILURE;
        }
    } else {
        let Some(path) = target else {
            return usage();
        };
        let src = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("homc: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if run_one(&path, &src, None, &opts, false).status == RunStatus::Failed {
            return ExitCode::FAILURE;
        }
    }
    let trace_text = tracer.snapshot().unwrap_or_default();
    let profile = fold_trace(&trace_text);
    say(format_args!("{}", profile.render_tree().trim_end()));
    if let Err(e) = profile.check_telescoping() {
        eprintln!("homc: profile: {e}");
        return ExitCode::FAILURE;
    }
    let folded = profile.folded();
    if let Err(e) = validate_folded(&folded) {
        eprintln!("homc: profile: malformed folded output: {e}");
        return ExitCode::FAILURE;
    }
    if let Some(out) = out_path {
        if let Err(e) = std::fs::write(&out, &folded) {
            eprintln!("homc: cannot write {out}: {e}");
            return ExitCode::FAILURE;
        }
        say(format_args!(
            "wrote {} folded stack(s) to {out}",
            folded.lines().count()
        ));
    }
    ExitCode::SUCCESS
}

/// `homc batch`: the crash-safe fleet runner. Every job gets exactly one
/// report line; the exit code reflects only *failed* (wrong-verdict) jobs.
fn cmd_batch(args: &[String]) -> ExitCode {
    let mut opts = BatchOptions::default();
    let mut targets: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let need = |flag: &str| format!("homc: {flag} needs a value");
        match args[i].as_str() {
            "--workers" => {
                let Some(v) = args.get(i + 1) else {
                    eprintln!("{}", need("--workers"));
                    return usage();
                };
                match v.parse::<usize>() {
                    Ok(n) if n > 0 => opts.workers = n,
                    _ => {
                        eprintln!("homc: --workers must be a positive integer, got {v:?}");
                        return ExitCode::FAILURE;
                    }
                }
                i += 2;
            }
            "--cache-dir" => {
                let Some(v) = args.get(i + 1) else {
                    eprintln!("{}", need("--cache-dir"));
                    return usage();
                };
                opts.cache_dir = Some(std::path::PathBuf::from(v));
                i += 2;
            }
            "--trace-dir" => {
                let Some(v) = args.get(i + 1) else {
                    eprintln!("{}", need("--trace-dir"));
                    return usage();
                };
                opts.trace_dir = Some(std::path::PathBuf::from(v));
                i += 2;
            }
            "--logical" => {
                opts.logical = true;
                i += 1;
            }
            flag @ ("--timeout" | "--watchdog") => {
                let Some(v) = args.get(i + 1) else {
                    eprintln!("{}", need(flag));
                    return usage();
                };
                let secs: f64 = match v.parse() {
                    Ok(s) => s,
                    Err(_) => {
                        eprintln!("homc: invalid {flag} value {v:?}");
                        return ExitCode::FAILURE;
                    }
                };
                if !secs.is_finite() || secs <= 0.0 {
                    eprintln!("homc: {flag} must be positive, got {v:?}");
                    return ExitCode::FAILURE;
                }
                let d = Duration::from_secs_f64(secs);
                if flag == "--timeout" {
                    opts.verify.timeout = Some(d);
                } else {
                    opts.watchdog = Some(d);
                }
                i += 2;
            }
            "--inject-job" => {
                let Some(v) = args.get(i + 1) else {
                    eprintln!("{}", need("--inject-job"));
                    return usage();
                };
                match v.parse::<JobFault>() {
                    Ok(f) => opts.job_faults.push(f),
                    Err(e) => {
                        eprintln!("homc: {e}");
                        return ExitCode::FAILURE;
                    }
                }
                i += 2;
            }
            "--inject-disk" => {
                let Some(v) = args.get(i + 1) else {
                    eprintln!("{}", need("--inject-disk"));
                    return usage();
                };
                match v.parse::<DiskFault>() {
                    Ok(f) => opts.disk_fault = Some(f),
                    Err(e) => {
                        eprintln!("homc: {e}");
                        return ExitCode::FAILURE;
                    }
                }
                i += 2;
            }
            "--stats" => {
                opts.verify.metrics = Metrics::new(opts.logical);
                i += 1;
            }
            flag if flag.starts_with("--") => {
                eprintln!("homc: unknown batch flag {flag}");
                return usage();
            }
            other => {
                targets.push(other.to_string());
                i += 1;
            }
        }
    }
    // No targets: the whole Table 1 suite. Otherwise each target is a suite
    // program name or a source file path.
    let mut jobs: Vec<BatchJob> = Vec::new();
    if targets.is_empty() {
        for p in suite::SUITE {
            jobs.push(BatchJob {
                name: p.name.to_string(),
                source: p.source.to_string(),
                expected: Some(p.expected),
            });
        }
    } else {
        for t in &targets {
            if let Some(p) = suite::find(t) {
                jobs.push(BatchJob {
                    name: p.name.to_string(),
                    source: p.source.to_string(),
                    expected: Some(p.expected),
                });
            } else {
                match std::fs::read_to_string(t) {
                    Ok(src) => jobs.push(BatchJob {
                        name: t.clone(),
                        source: src,
                        expected: None,
                    }),
                    Err(e) => {
                        eprintln!("homc: {t:?} is neither a suite program nor a readable file: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
        }
    }
    let stats_on = opts.verify.metrics.enabled();
    let report = match run_batch(jobs, &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("homc: batch: {e}");
            return ExitCode::FAILURE;
        }
    };
    for j in &report.jobs {
        let retried = if j.attempts > 1 {
            format!("  (attempts={}{})", j.attempts, match &j.retry_detail {
                Some(d) => format!(", retried after {d}"),
                None => String::new(),
            })
        } else {
            String::new()
        };
        say(format_args!(
            "{:12} wall={} -> {}{}{}",
            j.name,
            fmt_d(j.wall),
            j.verdict,
            if j.status == JobStatus::Failed {
                "  ** UNEXPECTED **"
            } else {
                ""
            },
            retried,
        ));
    }
    say(format_args!(
        "passed {}, failed {}, unknown {}  ({} jobs, {} workers)",
        report.passed,
        report.failed,
        report.unknown,
        report.jobs.len(),
        opts.workers,
    ));
    if let Some(load) = &report.load {
        say(format_args!("cache load: {load}  disk hits {}", report.disk_hits));
    }
    if let Some(p) = &report.publish {
        say(format_args!(
            "cache publish: {} record(s), {} bytes -> {}",
            p.records,
            p.bytes,
            p.path.display()
        ));
    }
    if stats_on {
        let rendered = opts.verify.metrics.snapshot().render("  ");
        if !rendered.is_empty() {
            say(format_args!("{}", rendered.trim_end()));
        }
    }
    if report.failed == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return usage();
    }
    match args[0].as_str() {
        "trace-validate" => {
            let Some(path) = args.get(1) else {
                return usage();
            };
            return cmd_trace_validate(path);
        }
        "trace-report" => {
            let Some(path) = args.get(1) else {
                return usage();
            };
            return cmd_trace_report(path);
        }
        kind @ ("trace-diff" | "bench-diff") => {
            return cmd_diff(kind, &args[1..]);
        }
        "profile" => {
            return cmd_profile(&args[1..]);
        }
        "batch" => {
            return cmd_batch(&args[1..]);
        }
        _ => {}
    }
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("homc: {e}");
            return usage();
        }
    };
    let tracer = match &cli.trace {
        None => Tracer::disabled(),
        Some((path, logical)) => match Tracer::to_file(std::path::Path::new(path), *logical) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("homc: cannot open trace file {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
    };
    // The budget (deadline + fault plan) is per program: each run_one call
    // builds a fresh Budget from these options. The metrics registry only
    // exists when --stats will render it; under a logical tracer it zeroes
    // durations so the run stays reproducible.
    let metrics = if cli.stats {
        Metrics::new(tracer.is_logical())
    } else {
        Metrics::disabled()
    };
    let opts = VerifierOptions {
        timeout: cli.timeout,
        faults: cli.faults.clone(),
        tracer: tracer.clone(),
        metrics,
        ..VerifierOptions::default()
    };

    if cli.suite {
        let filter = cli.target;
        let (mut passed, mut failed, mut unknown) = (0usize, 0usize, 0usize);
        let mut wall = Duration::ZERO;
        let mut totals = VerifyStats::default();
        let mut matched = false;
        for p in suite::SUITE {
            if let Some(f) = &filter {
                if p.name != f {
                    continue;
                }
            }
            matched = true;
            let report = run_one(p.name, p.source, Some(p.expected), &opts, cli.stats);
            match report.status {
                RunStatus::Passed => passed += 1,
                RunStatus::Failed => failed += 1,
                RunStatus::Unknown => unknown += 1,
            }
            wall += report.wall;
            if let Some(s) = report.stats {
                totals.smt_queries += s.smt_queries;
                totals.cache_hits += s.cache_hits;
                totals.cache_misses += s.cache_misses;
                totals.worklist_pops += s.worklist_pops;
                totals.rescans_avoided += s.rescans_avoided;
                totals.cuts_sliced += s.cuts_sliced;
                totals.cert_reuse_hits += s.cert_reuse_hits;
                totals.fm_prefix_hits += s.fm_prefix_hits;
                totals.abs_defs_reused += s.abs_defs_reused;
                totals.abs_defs_rebuilt += s.abs_defs_rebuilt;
                totals.abs_implicants += s.abs_implicants;
                totals.abs_queries_saved += s.abs_queries_saved;
                totals.abs_ctx_truncated += s.abs_ctx_truncated;
            }
        }
        if !matched {
            eprintln!(
                "homc: no suite program named {:?}",
                filter.as_deref().unwrap_or("")
            );
            return ExitCode::FAILURE;
        }
        say(format_args!(
            "passed {passed}, failed {failed}, unknown {unknown}  wall={}",
            fmt_d(wall)
        ));
        let lookups = totals.cache_hits + totals.cache_misses;
        let hit_rate = if lookups == 0 {
            0.0
        } else {
            100.0 * totals.cache_hits as f64 / lookups as f64
        };
        say(format_args!(
            "smt queries {}, cache hits {}/{} ({hit_rate:.0}%), worklist pops {}, rescans avoided {}",
            totals.smt_queries,
            totals.cache_hits,
            lookups,
            totals.worklist_pops,
            totals.rescans_avoided,
        ));
        say(format_args!(
            "refinement fast path: cuts sliced {}, cert reuse {}, fm prefix hits {}",
            totals.cuts_sliced, totals.cert_reuse_hits, totals.fm_prefix_hits,
        ));
        say(format_args!(
            "incremental abstraction: defs reused {}, rebuilt {}, implicants {}, \
             queries saved {}, ctx truncated {}",
            totals.abs_defs_reused,
            totals.abs_defs_rebuilt,
            totals.abs_implicants,
            totals.abs_queries_saved,
            totals.abs_ctx_truncated,
        ));
        if failed == 0 {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        }
    } else {
        let Some(path) = cli.target else {
            return usage();
        };
        let src = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("homc: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match run_one(&path, &src, None, &opts, cli.stats).status {
            RunStatus::Failed => ExitCode::FAILURE,
            RunStatus::Passed | RunStatus::Unknown => ExitCode::SUCCESS,
        }
    }
}
