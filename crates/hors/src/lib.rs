//! `homc-hors`: higher-order recursion schemes and their model checking.
//!
//! The substrate the paper's pipeline rests on (§3): recursion schemes —
//! grammars for infinite trees, equivalently simply-typed λ-terms with
//! recursion — and the decidable model checking of the trees they generate
//! against (deterministic trivial) tree automata, the reachability fragment
//! of Ong's theorem used throughout the paper.
//!
//! * [`ast`] — schemes, kinds, kind checking, trivial automata;
//! * [`check`] — a HorSat-style saturation decision procedure for
//!   "the generated tree contains a rejected node" (the complement of
//!   trivial-automaton acceptance);
//! * [`translate`] — the control-skeleton encoding of higher-order boolean
//!   programs into schemes, a sound over-approximation used to
//!   cross-validate the precise direct checker of `homc-hbp`.
//!
//! # Example
//!
//! ```
//! use homc_hors::ast::{Hors, Kind, Rule, Term, TrivialAutomaton};
//! use homc_hors::check::rejected;
//!
//! // S = F c ;  F x = br x (F (s x))  — an infinite tree with no `fail`.
//! let hors = Hors {
//!     terminals: vec![("br".into(), 2), ("s".into(), 1), ("c".into(), 0),
//!                     ("fail".into(), 0)],
//!     rules: vec![
//!         Rule { name: "S".into(), params: vec![],
//!                body: Term::NT("F".into()).app([Term::Terminal("c".into())]) },
//!         Rule { name: "F".into(), params: vec![("x".into(), Kind::O)],
//!                body: Term::Terminal("br".into()).app([
//!                    Term::Var("x".into()),
//!                    Term::NT("F".into()).app([
//!                        Term::Terminal("s".into()).app([Term::Var("x".into())])]),
//!                ]) },
//!     ],
//!     start: "S".into(),
//! };
//! let automaton = TrivialAutomaton::fail_free(&hors, &["fail"]);
//! assert!(!rejected(&hors, &automaton).unwrap());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod check;
pub mod translate;

pub use ast::{Hors, Kind, Rule, Term, TrivialAutomaton};
pub use check::{rejected, HArrow, HorsError};
pub use translate::skeleton;
