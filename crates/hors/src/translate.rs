//! From boolean programs to recursion schemes.
//!
//! The paper model-checks higher-order boolean programs by expressing them
//! as recursion schemes (§3). This module implements the *control skeleton*
//! of that encoding: base data is erased — every `assume` becomes a branch
//! (the condition may or may not hold), tuples become opaque — yielding a
//! scheme whose tree over-approximates the boolean program's behaviours:
//!
//! * every path of the boolean program is a path of the scheme's tree, so
//!   **skeleton fail-free ⇒ boolean program safe**;
//! * conversely, if the boolean program may fail, the skeleton surely
//!   contains `fail`.
//!
//! This gives a sound one-sided cross-validation oracle for the precise
//! direct checker in `homc-hbp` (exercised by the differential tests), and
//! doubles as a stress generator for the scheme checker on realistic
//! higher-order control flow.

use std::collections::BTreeMap;

use homc_hbp::{BExpr, BProgram, BTy, BVal};

use crate::ast::{Hors, Kind, Rule, Term};

/// Translates the erased kind of a boolean-program type in *argument*
/// position: every tuple becomes the dummy-data kind `o → o`; function
/// results (always `unit` in CPS-normal programs) become the tree kind `o`.
fn kind_of(t: &BTy) -> Kind {
    match t {
        BTy::Tuple(_) => Kind::arrow(Kind::O, Kind::O),
        BTy::Fun(a, b) => Kind::arrow(kind_of(a), res_kind(b)),
    }
}

/// The erased kind in *result* position.
fn res_kind(t: &BTy) -> Kind {
    match t {
        BTy::Tuple(_) => Kind::O,
        BTy::Fun(_, _) => kind_of(t),
    }
}

/// Translates a boolean program to its control-skeleton recursion scheme.
///
/// Terminals: `br_s` (source choice), `br_a` (abstraction choice and erased
/// assumes), `fail`, `end`. Parameter names are prefixed with their
/// definition name to keep them globally unique (the flow analysis of the
/// checker keys on bare names).
pub fn skeleton(bp: &BProgram) -> Hors {
    let mut rules = Vec::new();
    // The dummy datum: kind o → o, a function never really used.
    rules.push(Rule {
        name: "Dummy".to_string(),
        params: vec![("dummy_x".to_string(), Kind::O)],
        body: Term::Terminal("end".to_string()),
    });
    for d in &bp.defs {
        let mut env: BTreeMap<String, Term> = BTreeMap::new();
        let mut params = Vec::new();
        for (x, t) in &d.params {
            let unique = format!("{}__{}", d.name, x);
            env.insert(x.name().to_string(), Term::Var(unique.clone()));
            params.push((unique, kind_of(t)));
        }
        rules.push(Rule {
            name: nt_name(&d.name.0),
            params,
            body: tr_expr(&d.body, &env),
        });
    }
    Hors {
        terminals: vec![
            ("br_s".to_string(), 2),
            ("br_a".to_string(), 2),
            ("fail".to_string(), 0),
            ("end".to_string(), 0),
        ],
        rules,
        start: nt_name(&bp.main.0),
    }
}

fn nt_name(f: &str) -> String {
    format!("N_{f}")
}

fn tr_val(v: &BVal, env: &BTreeMap<String, Term>) -> Term {
    match v {
        BVal::Tuple(_) => Term::NT("Dummy".to_string()),
        BVal::Var(x) => env
            .get(x.name())
            .cloned()
            .unwrap_or_else(|| Term::NT("Dummy".to_string())),
        BVal::Fun(g) => Term::NT(nt_name(&g.0)),
        BVal::PApp(h, args) => tr_val(h, env).app(args.iter().map(|a| tr_val(a, env))),
    }
}

fn tr_expr(e: &BExpr, env: &BTreeMap<String, Term>) -> Term {
    match e {
        BExpr::Value(_) => Term::Terminal("end".to_string()),
        BExpr::Fail => Term::Terminal("fail".to_string()),
        BExpr::Call(h, args) => tr_val(h, env).app(args.iter().map(|a| tr_val(a, env))),
        BExpr::SChoice(l, r) => {
            Term::Terminal("br_s".to_string()).app([tr_expr(l, env), tr_expr(r, env)])
        }
        BExpr::AChoice(l, r) => {
            Term::Terminal("br_a".to_string()).app([tr_expr(l, env), tr_expr(r, env)])
        }
        // The condition is erased: both "holds" (continue) and "fails"
        // (stop without failure) are possible in the skeleton.
        BExpr::Assume(_, body) => Term::Terminal("br_a".to_string())
            .app([tr_expr(body, env), Term::Terminal("end".to_string())]),
        BExpr::Let(x, rhs, body) => {
            // Base data is erased (the variable falls back to `Dummy`),
            // but a *function-typed* binding is control flow and must be
            // substituted through; the rhs's choices are behaviour and are
            // folded in front of the body either way.
            let mut env2 = env.clone();
            env2.remove(x.name());
            let mut leaves = Vec::new();
            value_leaves(rhs, &mut leaves);
            if let [v] = leaves.as_slice() {
                if !matches!(v, BVal::Tuple(_)) {
                    env2.insert(x.name().to_string(), tr_val(v, env));
                }
            }
            tr_rhs_choices(rhs, tr_expr(body, &env2))
        }
    }
}

/// Prefixes a translated body with the choice structure of an (erased) let
/// right-hand side.
fn tr_rhs_choices(rhs: &BExpr, tail: Term) -> Term {
    match rhs {
        BExpr::Value(_) => tail,
        BExpr::SChoice(l, r) => Term::Terminal("br_s".to_string()).app([
            tr_rhs_choices(l, tail.clone()),
            tr_rhs_choices(r, tail),
        ]),
        BExpr::AChoice(l, r) => Term::Terminal("br_a".to_string()).app([
            tr_rhs_choices(l, tail.clone()),
            tr_rhs_choices(r, tail),
        ]),
        BExpr::Assume(_, e) => Term::Terminal("br_a".to_string())
            .app([tr_rhs_choices(e, tail), Term::Terminal("end".to_string())]),
        BExpr::Let(_, r, b) => {
            let inner = tr_rhs_choices(b, tail);
            tr_rhs_choices(r, inner)
        }
        BExpr::Call(_, _) | BExpr::Fail => tail,
    }
}

/// Collects the value leaves of a call-free rhs.
fn value_leaves<'a>(e: &'a BExpr, out: &mut Vec<&'a BVal>) {
    match e {
        BExpr::Value(v) => out.push(v),
        BExpr::Let(_, _, b) => value_leaves(b, out),
        BExpr::SChoice(l, r) | BExpr::AChoice(l, r) => {
            value_leaves(l, out);
            value_leaves(r, out);
        }
        BExpr::Assume(_, e) => value_leaves(e, out),
        BExpr::Call(_, _) | BExpr::Fail => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::TrivialAutomaton;
    use crate::check::rejected;
    use homc_hbp::{BDef, BoolExpr};
    use homc_smt::Var;

    #[test]
    fn skeleton_over_approximates() {
        // main = let b = ⟨T⟩ ⊕ ⟨F⟩ in assume b.0; fail — the boolean program
        // may fail; so must the skeleton.
        let b = Var::new("b");
        let bp = BProgram {
            defs: vec![BDef {
                name: "main".into(),
                params: vec![],
                body: BExpr::let_(
                    b.clone(),
                    BExpr::achoice(
                        BExpr::Value(BVal::Tuple(vec![BoolExpr::TRUE])),
                        BExpr::Value(BVal::Tuple(vec![BoolExpr::FALSE])),
                    ),
                    BExpr::assume(BoolExpr::Proj(b, 0), BExpr::Fail),
                ),
            }],
            main: "main".into(),
        };
        bp.check().expect("wf");
        let h = skeleton(&bp);
        h.check().expect("kinds");
        let a = TrivialAutomaton::fail_free(&h, &["fail"]);
        assert!(rejected(&h, &a).expect("checks"));
    }

    #[test]
    fn fail_free_program_gives_fail_free_skeleton() {
        let bp = BProgram {
            defs: vec![BDef {
                name: "main".into(),
                params: vec![],
                body: BExpr::schoice(
                    BExpr::Value(BVal::unit()),
                    BExpr::Value(BVal::unit()),
                ),
            }],
            main: "main".into(),
        };
        let h = skeleton(&bp);
        h.check().expect("kinds");
        let a = TrivialAutomaton::fail_free(&h, &["fail"]);
        assert!(!rejected(&h, &a).expect("checks"));
    }
}
