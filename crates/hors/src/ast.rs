//! Higher-order recursion schemes (HORS) and trivial tree automata.
//!
//! A recursion scheme is a simply-kinded grammar generating one (possibly
//! infinite) tree; the model checking of such trees against automata is the
//! decidable core the paper builds on (§1, §3, Ong 2006). This module gives
//! the grammar representation, kind checking, and deterministic trivial
//! automata.

use std::collections::BTreeMap;
use std::fmt;

/// A simple kind: the tree kind `o` or an arrow.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Kind {
    /// The kind of trees.
    O,
    /// `k1 → k2`.
    Arrow(Box<Kind>, Box<Kind>),
}

impl Kind {
    /// `k1 → k2`.
    pub fn arrow(k1: Kind, k2: Kind) -> Kind {
        Kind::Arrow(Box::new(k1), Box::new(k2))
    }

    /// The kind `o → … → o → o` with `n` arguments.
    pub fn order1(n: usize) -> Kind {
        (0..n).fold(Kind::O, |acc, _| Kind::arrow(Kind::O, acc))
    }

    /// The order of the kind.
    pub fn order(&self) -> usize {
        match self {
            Kind::O => 0,
            Kind::Arrow(a, b) => (a.order() + 1).max(b.order()),
        }
    }

    /// Splits into parameter kinds and the final result (always `o`).
    pub fn uncurry(&self) -> Vec<&Kind> {
        let mut ps = Vec::new();
        let mut k = self;
        while let Kind::Arrow(a, b) = k {
            ps.push(a.as_ref());
            k = b;
        }
        ps
    }
}

impl fmt::Display for Kind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Kind::O => write!(f, "o"),
            Kind::Arrow(a, b) => {
                if matches!(a.as_ref(), Kind::O) {
                    write!(f, "o -> {b}")
                } else {
                    write!(f, "({a}) -> {b}")
                }
            }
        }
    }
}

/// An applicative term of a recursion scheme.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Term {
    /// A nonterminal.
    NT(String),
    /// A bound variable.
    Var(String),
    /// A terminal (tree constructor).
    Terminal(String),
    /// Application.
    App(Box<Term>, Box<Term>),
}

impl Term {
    /// Applies arguments.
    pub fn app(self, args: impl IntoIterator<Item = Term>) -> Term {
        args.into_iter()
            .fold(self, |acc, a| Term::App(Box::new(acc), Box::new(a)))
    }

    /// Splits into head and argument list.
    pub fn uncurry(&self) -> (&Term, Vec<&Term>) {
        match self {
            Term::App(h, a) => {
                let (head, mut args) = h.uncurry();
                args.push(a);
                (head, args)
            }
            t => (t, Vec::new()),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::NT(n) => write!(f, "{n}"),
            Term::Var(v) => write!(f, "{v}"),
            Term::Terminal(t) => write!(f, "{t}"),
            Term::App(h, a) => {
                write!(f, "{h} ")?;
                if matches!(a.as_ref(), Term::App(_, _)) {
                    write!(f, "({a})")
                } else {
                    write!(f, "{a}")
                }
            }
        }
    }
}

/// A rewrite rule `F x₁ … xₙ = t`.
#[derive(Clone, Debug)]
pub struct Rule {
    /// Nonterminal name.
    pub name: String,
    /// Parameters with kinds.
    pub params: Vec<(String, Kind)>,
    /// Body (kind `o`).
    pub body: Term,
}

impl Rule {
    /// The nonterminal's kind.
    pub fn kind(&self) -> Kind {
        self.params
            .iter()
            .rev()
            .fold(Kind::O, |acc, (_, k)| Kind::arrow(k.clone(), acc))
    }
}

/// A higher-order recursion scheme.
#[derive(Clone, Debug)]
pub struct Hors {
    /// Terminals with arities.
    pub terminals: Vec<(String, usize)>,
    /// Rules.
    pub rules: Vec<Rule>,
    /// Start nonterminal (kind `o`).
    pub start: String,
}

impl Hors {
    /// Looks up a rule.
    pub fn rule(&self, name: &str) -> Option<&Rule> {
        self.rules.iter().find(|r| r.name == name)
    }

    /// The arity of a terminal.
    pub fn terminal_arity(&self, name: &str) -> Option<usize> {
        self.terminals
            .iter()
            .find(|(t, _)| t == name)
            .map(|(_, a)| *a)
    }

    /// The order of the scheme (max order of nonterminal kinds).
    pub fn order(&self) -> usize {
        self.rules.iter().map(|r| r.kind().order()).max().unwrap_or(0)
    }

    /// Kind-checks the scheme: every body has kind `o`, every application
    /// is well-kinded, the start symbol exists with kind `o`.
    pub fn check(&self) -> Result<(), String> {
        let nts: BTreeMap<&str, Kind> = self
            .rules
            .iter()
            .map(|r| (r.name.as_str(), r.kind()))
            .collect();
        match self.rule(&self.start) {
            None => return Err(format!("missing start symbol {}", self.start)),
            Some(r) if !r.params.is_empty() => {
                return Err("start symbol must have kind o".into())
            }
            Some(_) => {}
        }
        for r in &self.rules {
            let mut env: BTreeMap<&str, Kind> =
                r.params.iter().map(|(x, k)| (x.as_str(), k.clone())).collect();
            let k = self.kind_of(&r.body, &mut env, &nts)?;
            if k != Kind::O {
                return Err(format!("body of {} has kind {k}, expected o", r.name));
            }
        }
        Ok(())
    }

    fn kind_of(
        &self,
        t: &Term,
        env: &mut BTreeMap<&str, Kind>,
        nts: &BTreeMap<&str, Kind>,
    ) -> Result<Kind, String> {
        match t {
            Term::NT(n) => nts
                .get(n.as_str())
                .cloned()
                .ok_or_else(|| format!("unknown nonterminal {n}")),
            Term::Var(v) => env
                .get(v.as_str())
                .cloned()
                .ok_or_else(|| format!("unbound variable {v}")),
            Term::Terminal(a) => {
                let ar = self
                    .terminal_arity(a)
                    .ok_or_else(|| format!("unknown terminal {a}"))?;
                Ok(Kind::order1(ar))
            }
            Term::App(h, a) => {
                let kh = self.kind_of(h, env, nts)?;
                let ka = self.kind_of(a, env, nts)?;
                match kh {
                    Kind::Arrow(p, r) if *p == ka => Ok(*r),
                    Kind::Arrow(p, _) => Err(format!("kind mismatch: expected {p}, got {ka}")),
                    Kind::O => Err("application of a tree-kinded term".into()),
                }
            }
        }
    }
}

impl fmt::Display for Hors {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.rules {
            write!(f, "{}", r.name)?;
            for (x, _) in &r.params {
                write!(f, " {x}")?;
            }
            writeln!(f, " = {}", r.body)?;
        }
        Ok(())
    }
}

/// A deterministic trivial tree automaton: all states accepting, transitions
/// give the state of each child; a missing transition rejects.
#[derive(Clone, Debug)]
pub struct TrivialAutomaton {
    /// States (index 0 is initial).
    pub states: Vec<String>,
    /// `(state, terminal) → child states`; absent = reject.
    pub delta: BTreeMap<(usize, String), Vec<usize>>,
}

impl TrivialAutomaton {
    /// The automaton accepting exactly the trees with no node labelled by
    /// one of `bad` — the reachability property of the paper.
    pub fn fail_free(hors: &Hors, bad: &[&str]) -> TrivialAutomaton {
        let mut delta = BTreeMap::new();
        for (t, ar) in &hors.terminals {
            if !bad.iter().any(|b| b == t) {
                delta.insert((0, t.clone()), vec![0; *ar]);
            }
        }
        TrivialAutomaton {
            states: vec!["q0".to_string()],
            delta,
        }
    }

    /// The terminals a given state has no transition for (the "bad" set of
    /// that state).
    pub fn rejected(&self, state: usize, hors: &Hors) -> Vec<String> {
        hors.terminals
            .iter()
            .filter(|(t, _)| !self.delta.contains_key(&(state, t.clone())))
            .map(|(t, _)| t.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The classic order-1 scheme S = F c, F x = br x (F (s x)) generating
    /// br c (br (s c) (br (s (s c)) …)).
    pub(crate) fn counter_scheme() -> Hors {
        Hors {
            terminals: vec![
                ("br".into(), 2),
                ("s".into(), 1),
                ("c".into(), 0),
                ("fail".into(), 0),
            ],
            rules: vec![
                Rule {
                    name: "S".into(),
                    params: vec![],
                    body: Term::NT("F".into()).app([Term::Terminal("c".into())]),
                },
                Rule {
                    name: "F".into(),
                    params: vec![("x".into(), Kind::O)],
                    body: Term::Terminal("br".into()).app([
                        Term::Var("x".into()),
                        Term::NT("F".into())
                            .app([Term::Terminal("s".into()).app([Term::Var("x".into())])]),
                    ]),
                },
            ],
            start: "S".into(),
        }
    }

    #[test]
    fn kinds_check() {
        let h = counter_scheme();
        h.check().expect("kinds");
        assert_eq!(h.order(), 1);
    }

    #[test]
    fn kind_errors_detected() {
        let mut h = counter_scheme();
        // Break the rule: apply a tree-kinded variable.
        h.rules[1].body = Term::Var("x".into()).app([Term::Terminal("c".into())]);
        assert!(h.check().is_err());
    }

    #[test]
    fn automaton_construction() {
        let h = counter_scheme();
        let a = TrivialAutomaton::fail_free(&h, &["fail"]);
        assert_eq!(a.rejected(0, &h), vec!["fail".to_string()]);
    }
}
