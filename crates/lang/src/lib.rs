//! `homc-lang`: the source language of the `homc` verifier.
//!
//! This crate implements the front half of the pipeline of Kobayashi, Sato &
//! Unno, *Predicate Abstraction and CEGAR for Higher-Order Model Checking*
//! (PLDI 2011):
//!
//! * a tiny OCaml-like **surface language** (§6) with booleans, integers,
//!   `let rec`, higher-order functions, `assert`, and unknown integers;
//! * the **kernel language** of §2 — call-by-value, with non-deterministic
//!   choice `e₁ ⊓ e₂`, `assume`, `fail`, and partial applications as values;
//! * **elaboration** (α-renaming, λ-lifting, A-normalization, the `if`
//!   desugaring of §2) and the **CPS transformation** the paper applies
//!   before verification (§6, footnote 8);
//! * a labelled **reference interpreter** (Figure 2) and a **symbolic
//!   replayer** used by the CEGAR feasibility check (§5.1).
//!
//! # Example
//!
//! ```
//! use homc_lang::{frontend, eval::{run, ScriptDriver, Label}};
//!
//! // The paper's §1 example M1 — safe: the assertion never fails.
//! let program = frontend(
//!     "let f x g = g (x + 1) in
//!      let h y = assert (y > 0) in
//!      let k n = if n > 0 then f n h else () in
//!      k m",
//! ).expect("compiles");
//!
//! // Concretely execute one schedule: n = 3, both `if`s take their
//! // then-branches.
//! let mut driver = ScriptDriver::new(vec![Label::Zero, Label::Zero], vec![3]);
//! let (outcome, _trace) = run(&program.cps, &mut driver, 10_000);
//! assert!(!outcome.is_fail());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod cps;
pub mod elaborate;
pub mod eval;
pub mod kernel;
pub mod lexer;
pub mod manifest;
pub mod parser;
pub mod symexec;
pub mod types;

use std::fmt;

/// A fully front-ended program: source metrics plus the pre- and post-CPS
/// kernels.
#[derive(Clone, Debug)]
pub struct Compiled {
    /// The paper's size metric S (word count of the surface program).
    pub size: usize,
    /// The paper's order metric O (largest function order, pre-CPS).
    pub order: usize,
    /// The elaborated kernel program (direct style).
    pub direct: kernel::Program,
    /// The CPS-transformed kernel program — the verification subject.
    pub cps: kernel::Program,
}

/// Errors from any stage of the front end.
#[derive(Clone, Debug)]
pub enum FrontendError {
    /// Lexing/parsing failed.
    Parse(lexer::ParseError),
    /// Simple-type inference failed.
    Type(types::TypeError),
    /// Elaboration failed.
    Elab(elaborate::ElabError),
    /// An internal invariant was violated (kernel re-check failed).
    Internal(String),
}

impl fmt::Display for FrontendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrontendError::Parse(e) => write!(f, "{e}"),
            FrontendError::Type(e) => write!(f, "{e}"),
            FrontendError::Elab(e) => write!(f, "{e}"),
            FrontendError::Internal(e) => write!(f, "internal error: {e}"),
        }
    }
}

impl std::error::Error for FrontendError {}

/// Runs the whole front end on a source string: parse, infer, elaborate,
/// η-expand, CPS-transform, and re-check every intermediate program.
pub fn frontend(src: &str) -> Result<Compiled, FrontendError> {
    let ast = parser::parse(src).map_err(FrontendError::Parse)?;
    let size = ast.word_count();
    let typed = types::infer(&ast).map_err(FrontendError::Type)?;
    let direct = elaborate::elaborate(&typed).map_err(FrontendError::Elab)?;
    direct
        .check()
        .map_err(|e| FrontendError::Internal(format!("pre-CPS kernel: {e}")))?;
    let order = direct.order();
    let cps = cps::cps_transform(&direct);
    cps.check()
        .map_err(|e| FrontendError::Internal(format!("post-CPS kernel: {e}")))?;
    if !cps.is_cps_normal() {
        return Err(FrontendError::Internal(
            "CPS output is not in normal form".into(),
        ));
    }
    Ok(Compiled {
        size,
        order,
        direct,
        cps,
    })
}
