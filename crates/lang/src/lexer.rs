//! Lexer for the surface language.

use std::fmt;

/// A lexical token.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Token {
    /// Keyword or punctuation with fixed spelling.
    Kw(&'static str),
    /// An identifier.
    Ident(String),
    /// An integer literal.
    Int(i64),
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Kw(s) => write!(f, "{s}"),
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(n) => write!(f, "{n}"),
        }
    }
}

/// A lexing or parsing error with a byte position.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the source where the error was noticed.
    pub position: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

const KEYWORDS: &[&str] = &[
    "let", "rec", "in", "if", "then", "else", "fun", "true", "false", "not", "assert", "assume",
    "fail", "and",
];

const SYMBOLS: &[&str] = &[
    "->", "<=", ">=", "<>", "&&", "||", "(", ")", "=", "<", ">", "+", "-", "*", "/", ";", ",",
];

/// Tokenizes a source string. Comments are `(* … *)` (nesting allowed).
pub fn lex(src: &str) -> Result<Vec<(Token, usize)>, ParseError> {
    let bytes = src.as_bytes();
    let mut i = 0;
    let mut out = Vec::new();
    'outer: while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if src[i..].starts_with("(*") {
            let mut depth = 1;
            let mut j = i + 2;
            while j < bytes.len() {
                if src[j..].starts_with("(*") {
                    depth += 1;
                    j += 2;
                } else if src[j..].starts_with("*)") {
                    depth -= 1;
                    j += 2;
                    if depth == 0 {
                        i = j;
                        continue 'outer;
                    }
                } else {
                    j += 1;
                }
            }
            return Err(ParseError {
                message: "unterminated comment".into(),
                position: i,
            });
        }
        // Numbers.
        if c.is_ascii_digit() {
            let start = i;
            while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                i += 1;
            }
            let n: i64 = src[start..i].parse().map_err(|_| ParseError {
                message: "integer literal out of range".into(),
                position: start,
            })?;
            out.push((Token::Int(n), start));
            continue;
        }
        // Identifiers and keywords.
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len() {
                let c = bytes[i] as char;
                if c.is_ascii_alphanumeric() || c == '_' || c == '\'' {
                    i += 1;
                } else {
                    break;
                }
            }
            let word = &src[start..i];
            if let Some(kw) = KEYWORDS.iter().find(|k| **k == word) {
                out.push((Token::Kw(kw), start));
            } else {
                out.push((Token::Ident(word.to_string()), start));
            }
            continue;
        }
        // Symbols (longest match first).
        for sym in SYMBOLS {
            if src[i..].starts_with(sym) {
                out.push((Token::Kw(sym), i));
                i += sym.len();
                continue 'outer;
            }
        }
        return Err(ParseError {
            message: format!("unexpected character {c:?}"),
            position: i,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_the_intro_program() {
        let toks = lex("let f x g = g (x + 1) in f").expect("lexes");
        let words: Vec<String> = toks.iter().map(|(t, _)| t.to_string()).collect();
        assert_eq!(
            words,
            ["let", "f", "x", "g", "=", "g", "(", "x", "+", "1", ")", "in", "f"]
        );
    }

    #[test]
    fn nested_comments() {
        let toks = lex("1 (* a (* b *) c *) 2").expect("lexes");
        assert_eq!(toks.len(), 2);
    }

    #[test]
    fn longest_symbol_match() {
        let toks = lex("x <= y <> z -> w").expect("lexes");
        let words: Vec<String> = toks.iter().map(|(t, _)| t.to_string()).collect();
        assert_eq!(words, ["x", "<=", "y", "<>", "z", "->", "w"]);
    }

    #[test]
    fn rejects_garbage() {
        assert!(lex("let x = #").is_err());
        assert!(lex("(* unterminated").is_err());
    }
}
