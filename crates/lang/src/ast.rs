//! The surface abstract syntax: a tiny OCaml-like functional language.
//!
//! This is the language the paper's prototype accepts (§6): booleans and
//! integers as base types, `let rec`, higher-order functions, conditionals,
//! `assert`, and unknown integers (free variables / `rand_int ()`).

use std::fmt;

/// A source-level identifier.
pub type Ident = String;

/// Binary operators of the surface language.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BinOp {
    /// Integer addition.
    Add,
    /// Integer subtraction.
    Sub,
    /// Integer multiplication.
    Mul,
    /// Integer division (kept for completeness; treated as uninterpreted by
    /// the abstraction when the divisor is symbolic).
    Div,
    /// `=` on integers or booleans.
    Eq,
    /// `<>`.
    Ne,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `&&`.
    And,
    /// `||`.
    Or,
}

impl BinOp {
    /// `true` for operators whose arguments are integers.
    pub fn is_arith(self) -> bool {
        matches!(
            self,
            BinOp::Add
                | BinOp::Sub
                | BinOp::Mul
                | BinOp::Div
                | BinOp::Lt
                | BinOp::Le
                | BinOp::Gt
                | BinOp::Ge
        )
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Eq => "=",
            BinOp::Ne => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        };
        write!(f, "{s}")
    }
}

/// A surface expression.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SurfaceExpr {
    /// `()`.
    Unit,
    /// Boolean literal.
    Bool(bool),
    /// Integer literal.
    Int(i64),
    /// Variable reference.
    Var(Ident),
    /// `e1 op e2`.
    BinOp(BinOp, Box<SurfaceExpr>, Box<SurfaceExpr>),
    /// Unary minus.
    Neg(Box<SurfaceExpr>),
    /// Boolean negation.
    Not(Box<SurfaceExpr>),
    /// Application `e1 e2` (curried).
    App(Box<SurfaceExpr>, Box<SurfaceExpr>),
    /// `if c then t else e`.
    If(Box<SurfaceExpr>, Box<SurfaceExpr>, Box<SurfaceExpr>),
    /// `let [rec] f x̃ = e1 in e2`.
    Let {
        /// Whether the binding is recursive.
        recursive: bool,
        /// Bound name.
        name: Ident,
        /// Parameters (empty for a plain value binding).
        params: Vec<Ident>,
        /// Right-hand side.
        rhs: Box<SurfaceExpr>,
        /// Body.
        body: Box<SurfaceExpr>,
    },
    /// `fun x -> e`.
    Fun(Ident, Box<SurfaceExpr>),
    /// `assert e` — fails when `e` is false.
    Assert(Box<SurfaceExpr>),
    /// `assume e; …` semantics: continue only when `e` holds.
    Assume(Box<SurfaceExpr>, Box<SurfaceExpr>),
    /// `fail ()` — unconditional failure.
    Fail,
    /// An unknown integer (`rand_int ()` or a free variable).
    RandInt,
    /// An unknown boolean (`rand_bool ()`).
    RandBool,
    /// `e1; e2` sequencing.
    Seq(Box<SurfaceExpr>, Box<SurfaceExpr>),
}

impl SurfaceExpr {
    /// Builds a curried application `f a₁ … aₙ`.
    pub fn apply(f: SurfaceExpr, args: impl IntoIterator<Item = SurfaceExpr>) -> SurfaceExpr {
        args.into_iter()
            .fold(f, |acc, a| SurfaceExpr::App(Box::new(acc), Box::new(a)))
    }

    /// Counts the "words" of the expression, mirroring the paper's size
    /// metric S ("size of programs, measured in word counts").
    pub fn word_count(&self) -> usize {
        match self {
            SurfaceExpr::Unit | SurfaceExpr::Bool(_) | SurfaceExpr::Int(_) => 1,
            SurfaceExpr::Var(_) | SurfaceExpr::Fail => 1,
            SurfaceExpr::RandInt | SurfaceExpr::RandBool => 1,
            SurfaceExpr::BinOp(_, a, b) => 1 + a.word_count() + b.word_count(),
            SurfaceExpr::Neg(a) | SurfaceExpr::Not(a) => 1 + a.word_count(),
            SurfaceExpr::App(a, b) => a.word_count() + b.word_count(),
            SurfaceExpr::If(c, t, e) => 1 + c.word_count() + t.word_count() + e.word_count(),
            SurfaceExpr::Let {
                params, rhs, body, ..
            } => 2 + params.len() + rhs.word_count() + body.word_count(),
            SurfaceExpr::Fun(_, e) => 2 + e.word_count(),
            SurfaceExpr::Assert(e) => 1 + e.word_count(),
            SurfaceExpr::Assume(c, e) => 1 + c.word_count() + e.word_count(),
            SurfaceExpr::Seq(a, b) => a.word_count() + b.word_count(),
        }
    }
}
