//! Stable per-definition fingerprints over the kernel normal form.
//!
//! Cross-run incremental re-verification needs to know *which definitions
//! changed* between two submissions of a program. A [`Manifest`] records,
//! for every top-level definition of a kernel [`Program`], a content hash
//! of the definition itself (`body_hash`) and a hash of its depth-1
//! dependency cone (`cone_hash`) — the same cone discipline the
//! transition memo in `homc-abs::incremental` uses: a definition depends
//! on every top-level function its body mentions in value position.
//!
//! Hashes are [`stable_hash64`] (FNV-1a) over the kernel's deterministic
//! `Display` rendering, so they are stable across processes and runs and
//! insensitive to anything but the normal form itself. Two submissions
//! whose surface text differs only in ways the front end normalizes away
//! (whitespace, redundant parens) produce identical manifests.

use std::collections::{BTreeMap, BTreeSet};

use homc_trace::stable_hash64;

use crate::kernel::{Def, Expr, FunName, Program, Value};

/// The fingerprint of one top-level definition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DefEntry {
    /// The definition's name.
    pub name: FunName,
    /// Hash of the definition's own rendering (name, typed parameters,
    /// return type, body).
    pub body_hash: u64,
    /// Hash of `body_hash` plus the `(name, body_hash)` pairs of every
    /// top-level function the body references — a change anywhere in the
    /// depth-1 cone perturbs this.
    pub cone_hash: u64,
}

/// A per-program manifest: one [`DefEntry`] per definition, in program
/// order, plus the entry point.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Manifest {
    /// Entries in the same order as [`Program::defs`].
    pub defs: Vec<DefEntry>,
    /// The program's entry point.
    pub main: FunName,
}

/// Renders a definition exactly as [`Program`]'s `Display` does, giving a
/// deterministic byte string to hash.
fn render_def(d: &Def) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = write!(s, "{}", d.name);
    for (x, t) in &d.params {
        let _ = write!(s, " ({x}:{t})");
    }
    let _ = writeln!(s, " : {} =", d.ret);
    let _ = write!(s, "{}", d.body);
    s
}

/// Collects the top-level functions a value references.
fn value_funs(v: &Value, out: &mut BTreeSet<FunName>) {
    match v {
        Value::Const(_) | Value::Var(_) => {}
        Value::Fun(f) => {
            out.insert(f.clone());
        }
        Value::PApp(h, args) => {
            value_funs(h, out);
            for a in args {
                value_funs(a, out);
            }
        }
    }
}

/// Collects the top-level functions an expression references in value
/// position — the definition's depth-1 dependency cone.
fn expr_funs(e: &Expr, out: &mut BTreeSet<FunName>) {
    match e {
        Expr::Value(v) => value_funs(v, out),
        Expr::Call(f, args) => {
            value_funs(f, out);
            for a in args {
                value_funs(a, out);
            }
        }
        Expr::Op(_, args) => {
            for a in args {
                value_funs(a, out);
            }
        }
        Expr::Rand | Expr::Fail => {}
        Expr::Let(_, rhs, body) => {
            expr_funs(rhs, out);
            expr_funs(body, out);
        }
        Expr::Choice(l, r) => {
            expr_funs(l, out);
            expr_funs(r, out);
        }
        Expr::Assume(v, e) => {
            value_funs(v, out);
            expr_funs(e, out);
        }
    }
}

impl Manifest {
    /// Fingerprints every definition of `program`.
    pub fn of(program: &Program) -> Manifest {
        let body_hashes: BTreeMap<FunName, u64> = program
            .defs
            .iter()
            .map(|d| (d.name.clone(), stable_hash64(&render_def(d))))
            .collect();
        let defs = program
            .defs
            .iter()
            .map(|d| {
                let body_hash = body_hashes[&d.name];
                let mut cone = BTreeSet::new();
                expr_funs(&d.body, &mut cone);
                let mut acc = format!("self {body_hash:016x}|");
                for f in &cone {
                    use std::fmt::Write as _;
                    // A reference to a function that has no definition (the
                    // kernel checker rejects these, but be total) hashes as
                    // its name alone.
                    match body_hashes.get(f) {
                        Some(h) => {
                            let _ = write!(acc, "dep {f} {h:016x}|");
                        }
                        None => {
                            let _ = write!(acc, "dep {f} ?|");
                        }
                    }
                }
                DefEntry {
                    name: d.name.clone(),
                    body_hash,
                    cone_hash: stable_hash64(&acc),
                }
            })
            .collect();
        Manifest {
            defs,
            main: program.main.clone(),
        }
    }

    /// The definitions whose whole depth-1 cone is unchanged between two
    /// manifests: same name at the same index with an equal `cone_hash`.
    ///
    /// Index equality matters because downstream consumers (the transition
    /// memo) key replayed artifacts by definition *position*; a definition
    /// that merely moved is treated as changed, costing reuse but never
    /// soundness.
    pub fn unchanged_defs(&self, other: &Manifest) -> BTreeSet<FunName> {
        self.defs
            .iter()
            .zip(other.defs.iter())
            .filter(|(a, b)| a.name == b.name && a.cone_hash == b.cone_hash)
            .map(|(a, _)| a.name.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend;

    const SRC: &str = "let rec zip x y =
         if x = 0 then (if y = 0 then x else fail ())
         else if y = 0 then fail ()
         else 1 + zip (x - 1) (y - 1) in
       let rec map x = if x = 0 then x else 1 + map (x - 1) in
       if n >= 0 then assert (map (zip n n) = n) else ()";

    #[test]
    fn manifest_is_deterministic() {
        let a = Manifest::of(&frontend(SRC).unwrap().cps);
        let b = Manifest::of(&frontend(SRC).unwrap().cps);
        assert_eq!(a, b);
    }

    #[test]
    fn whitespace_only_edits_do_not_change_the_manifest() {
        let a = Manifest::of(&frontend(SRC).unwrap().cps);
        let b = Manifest::of(&frontend(&SRC.replace("  ", " ")).unwrap().cps);
        assert_eq!(a, b);
    }

    #[test]
    fn literal_edit_invalidates_only_the_touched_cone() {
        let cold = frontend(SRC).unwrap().cps;
        let edited = frontend(&SRC.replace("1 + map", "(0 + 1) + map")).unwrap().cps;
        let ma = Manifest::of(&cold);
        let mb = Manifest::of(&edited);
        assert_eq!(ma.defs.len(), mb.defs.len(), "def count must be stable");
        let unchanged = ma.unchanged_defs(&mb);
        assert!(!unchanged.is_empty(), "some cones must survive the edit");
        assert!(
            unchanged.len() < ma.defs.len(),
            "the edited definition's cone must be invalidated"
        );
        // zip never references map, so zip's cone survives a map edit.
        let zip = ma
            .defs
            .iter()
            .find(|d| d.name.0.contains("zip"))
            .expect("zip is a top-level definition");
        assert!(unchanged.contains(&zip.name), "zip cone unchanged: {unchanged:?}");
    }

    #[test]
    fn unchanged_defs_requires_positional_match() {
        let m = Manifest::of(&frontend(SRC).unwrap().cps);
        let mut rotated = m.clone();
        rotated.defs.rotate_left(1);
        // Every name now sits at a different index, so nothing matches.
        assert!(m.unchanged_defs(&rotated).is_empty());
    }
}
