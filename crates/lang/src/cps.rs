//! Call-by-value CPS transformation of kernel programs.
//!
//! The paper verifies all programs after CPS transformation (§6, footnote 8):
//! every function takes an extra continuation parameter and every body ends
//! in a tail call, `()`, or `fail`. Because elaboration has already
//! η-expanded every definition to a base-type body, the type translation is
//! the simple one that inserts a single answer continuation at the base
//! result:
//!
//! ```text
//! ⟦b⟧ = b        ⟦t₁ → … → tₙ → b⟧ = ⟦t₁⟧ → … → ⟦tₙ⟧ → (b → unit) → unit
//! ```
//!
//! Continuations arising from `let x = e₁ in e₂` with a serious `e₁` are
//! λ-lifted to fresh top-level definitions closing over their free variables,
//! so the output stays within the kernel (which has no anonymous functions).

use std::collections::BTreeMap;

use homc_smt::Var;

use crate::kernel::{Def, Expr, FunName, Program, Value};
use crate::types::SimpleTy;

/// CPS-translates a simple type.
pub fn cps_ty(t: &SimpleTy) -> SimpleTy {
    if t.is_base() {
        return t.clone();
    }
    let (params, ret) = t.uncurry();
    let k = SimpleTy::fun(ret.clone(), SimpleTy::Unit);
    let mut out = SimpleTy::fun(k, SimpleTy::Unit);
    for p in params.into_iter().rev() {
        out = SimpleTy::fun(cps_ty(p), out);
    }
    out
}

/// CPS-transforms a whole program.
///
/// The result's `main` is a wrapper `__top ũ = main† ũ k_end` where `ũ` are
/// the original unknowns and `k_end r = ()` discards the final answer; the
/// output satisfies [`Program::is_cps_normal`].
pub fn cps_transform(p: &Program) -> Program {
    let mut cx = Cps {
        counter: 0,
        new_defs: Vec::new(),
        sig: p
            .defs
            .iter()
            .map(|d| (d.name.clone(), d.ty()))
            .collect(),
    };
    let mut defs = Vec::new();
    for d in &p.defs {
        let mut env: BTreeMap<Var, SimpleTy> =
            d.params.iter().map(|(x, t)| (x.clone(), cps_ty(t))).collect();
        let k = Var::new(format!("k_{}", d.name.0));
        let k_ty = SimpleTy::fun(d.ret.clone(), SimpleTy::Unit);
        env.insert(k.clone(), k_ty.clone());
        let mut scope: Vec<Var> = d.params.iter().map(|(x, _)| x.clone()).collect();
        let body = cx.cps_expr(&d.body, &Value::Var(k.clone()), &mut env, &mut scope);
        let mut params: Vec<(Var, SimpleTy)> = d
            .params
            .iter()
            .map(|(x, t)| (x.clone(), cps_ty(t)))
            .collect();
        params.push((k, k_ty));
        defs.push(Def {
            name: d.name.clone(),
            params,
            ret: SimpleTy::Unit,
            body,
        });
    }
    // The answer continuation and the closed entry point.
    let main_def = p.main_def();
    let end = FunName("k_end".to_string());
    defs.push(Def {
        name: end.clone(),
        params: vec![(Var::new("end_r"), main_def.ret.clone())],
        ret: SimpleTy::Unit,
        body: Expr::Value(Value::unit()),
    });
    let top = FunName("__top".to_string());
    let top_params: Vec<(Var, SimpleTy)> = main_def.params.clone();
    let mut args: Vec<Value> = top_params
        .iter()
        .map(|(x, _)| Value::Var(x.clone()))
        .collect();
    args.push(Value::Fun(end));
    defs.push(Def {
        name: top.clone(),
        params: top_params,
        ret: SimpleTy::Unit,
        body: Expr::Call(Value::Fun(p.main.clone()), args),
    });
    defs.extend(cx.new_defs);
    Program { defs, main: top }
}

struct Cps {
    counter: usize,
    new_defs: Vec<Def>,
    sig: BTreeMap<FunName, SimpleTy>,
}

impl Cps {
    fn fresh(&mut self, base: &str) -> Var {
        self.counter += 1;
        Var::new(format!("{base}__{}", self.counter))
    }

    /// The type of a (CPS-translated) value under `env`.
    fn value_ty(&self, v: &Value, env: &BTreeMap<Var, SimpleTy>) -> SimpleTy {
        match v {
            Value::Const(c) => c.ty(),
            Value::Var(x) => env
                .get(x)
                .cloned()
                .unwrap_or_else(|| panic!("untyped variable {x} in CPS")),
            Value::Fun(f) => cps_ty(&self.sig[f]),
            Value::PApp(h, args) => {
                let mut t = self.value_ty(h, env);
                for _ in args {
                    match t {
                        SimpleTy::Fun(_, r) => t = *r,
                        _ => panic!("over-application in CPS"),
                    }
                }
                t
            }
        }
    }

    /// `cps_expr e k` produces the CPS form of `e` with continuation value
    /// `k` (of type `⟦ty(e)⟧ → unit`). `scope` tracks the variables bound on
    /// the current path, in binding order.
    fn cps_expr(
        &mut self,
        e: &Expr,
        k: &Value,
        env: &mut BTreeMap<Var, SimpleTy>,
        scope: &mut Vec<Var>,
    ) -> Expr {
        match e {
            Expr::Value(v) => Expr::Call(k.clone(), vec![v.clone()]),
            Expr::Call(f, args) => {
                let mut args = args.clone();
                args.push(k.clone());
                Expr::Call(f.clone(), args)
            }
            Expr::Op(op, args) => {
                let t = self.fresh("t");
                env.insert(t.clone(), op.result_ty());
                Expr::let_(
                    t.clone(),
                    Expr::Op(*op, args.clone()),
                    Expr::Call(k.clone(), vec![Value::Var(t)]),
                )
            }
            Expr::Rand => {
                let t = self.fresh("t");
                env.insert(t.clone(), SimpleTy::Int);
                Expr::let_(
                    t.clone(),
                    Expr::Rand,
                    Expr::Call(k.clone(), vec![Value::Var(t)]),
                )
            }
            Expr::Let(x, rhs, body) => match rhs.as_ref() {
                // Trivial right-hand sides stay in place.
                Expr::Op(_, _) | Expr::Rand | Expr::Value(_) => {
                    let xt = match rhs.as_ref() {
                        Expr::Op(op, _) => op.result_ty(),
                        Expr::Rand => SimpleTy::Int,
                        Expr::Value(v) => self.value_ty(v, env),
                        _ => unreachable!(),
                    };
                    env.insert(x.clone(), xt);
                    scope.push(x.clone());
                    let b = self.cps_expr(body, k, env, scope);
                    scope.pop();
                    Expr::Let(x.clone(), rhs.clone(), Box::new(b))
                }
                // A let of certain failure is dead code.
                Expr::Fail => Expr::Fail,
                // Serious right-hand sides: lift the continuation.
                _ => {
                    // Note: `rhs_ty` already returns the CPS-translated type
                    // (variable/function types in `env`/`sig` are CPS views).
                    let xt = self.rhs_ty(rhs, env);
                    env.insert(x.clone(), xt.clone());
                    scope.push(x.clone());
                    let kbody = self.cps_expr(body, k, env, scope);
                    scope.pop();
                    // Free variables of the continuation body, minus x.
                    let mut bound = vec![x.clone()];
                    let mut fvs = Vec::new();
                    kbody.free_vars(&mut bound, &mut fvs);
                    // Ghost-capture every in-scope integer: CEGAR's
                    // predicate templates may only depend on a function's
                    // own (earlier) parameters, so a continuation must carry
                    // the integers its result may relate to — the paper's
                    // Remark 2 "dummy parameter" device, applied
                    // systematically.
                    for v in scope.iter() {
                        if env.get(v) == Some(&SimpleTy::Int) && !fvs.contains(v) {
                            fvs.push(v.clone());
                        }
                    }
                    let kname = FunName(format!("k__{}", {
                        self.counter += 1;
                        self.counter
                    }));
                    let mut params: Vec<(Var, SimpleTy)> = fvs
                        .iter()
                        .map(|v| {
                            (
                                v.clone(),
                                env.get(v)
                                    .cloned()
                                    .unwrap_or_else(|| panic!("untyped capture {v}")),
                            )
                        })
                        .collect();
                    params.push((x.clone(), xt));
                    let kty = params
                        .iter()
                        .rev()
                        .fold(SimpleTy::Unit, |acc, (_, t)| SimpleTy::fun(t.clone(), acc));
                    self.sig.insert(kname.clone(), kty);
                    self.new_defs.push(Def {
                        name: kname.clone(),
                        params,
                        ret: SimpleTy::Unit,
                        body: kbody,
                    });
                    let kval = if fvs.is_empty() {
                        Value::Fun(kname)
                    } else {
                        Value::PApp(
                            Box::new(Value::Fun(kname)),
                            fvs.into_iter().map(Value::Var).collect(),
                        )
                    };
                    self.cps_expr(rhs, &kval, env, scope)
                }
            },
            Expr::Choice(l, r) => {
                let n = scope.len();
                let lc = self.cps_expr(l, k, env, scope);
                scope.truncate(n);
                let rc = self.cps_expr(r, k, env, scope);
                scope.truncate(n);
                Expr::choice(lc, rc)
            }
            Expr::Assume(v, e) => {
                Expr::assume(v.clone(), self.cps_expr(e, k, env, scope))
            }
            Expr::Fail => Expr::Fail,
        }
    }

    /// The (pre-CPS) type of a let right-hand side.
    fn rhs_ty(&self, e: &Expr, env: &BTreeMap<Var, SimpleTy>) -> SimpleTy {
        match e {
            Expr::Value(v) => self.value_ty(v, env),
            Expr::Op(op, _) => op.result_ty(),
            Expr::Rand => SimpleTy::Int,
            Expr::Fail => SimpleTy::Unit,
            Expr::Call(f, args) => {
                // Note: `f` here is already CPS-typed in env for variables,
                // but for a pre-CPS call the residual after `args` is the
                // *answer* type. We reconstruct it from the uncurried view.
                let mut t = self.value_ty(f, env);
                for _ in args {
                    match t {
                        SimpleTy::Fun(_, r) => t = *r,
                        _ => panic!("calling non-function"),
                    }
                }
                // `t` is now `(b -> unit) -> unit` in CPS view or `b`
                // pre-CPS; normalize to the base answer.
                match t {
                    SimpleTy::Fun(b, _) => match *b {
                        SimpleTy::Fun(ans, _) => *ans,
                        b => b,
                    },
                    b => b,
                }
            }
            Expr::Let(x, r, body) => {
                let xt = self.rhs_ty(r, env);
                let mut env2 = env.clone();
                env2.insert(x.clone(), xt);
                self.rhs_ty(body, &env2)
            }
            Expr::Choice(l, _) => self.rhs_ty(l, env),
            Expr::Assume(_, e) => self.rhs_ty(e, env),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elaborate::elaborate;
    use crate::parser::parse;
    use crate::types::infer;

    fn cps_of(src: &str) -> Program {
        let tp = infer(&parse(src).expect("parses")).expect("types");
        let p = elaborate(&tp).expect("elaborates");
        p.check().expect("pre-CPS kernel type-checks");
        let q = cps_transform(&p);
        q.check().expect("post-CPS kernel type-checks");
        q
    }

    #[test]
    fn cps_type_translation() {
        // int -> (int -> int) -> bool
        let t = SimpleTy::fun(
            SimpleTy::Int,
            SimpleTy::fun(SimpleTy::fun(SimpleTy::Int, SimpleTy::Int), SimpleTy::Bool),
        );
        let c = cps_ty(&t);
        // int -> (int -> (int -> unit) -> unit) -> (bool -> unit) -> unit
        let inner = SimpleTy::fun(
            SimpleTy::Int,
            SimpleTy::fun(SimpleTy::fun(SimpleTy::Int, SimpleTy::Unit), SimpleTy::Unit),
        );
        let expected = SimpleTy::fun(
            SimpleTy::Int,
            SimpleTy::fun(
                inner,
                SimpleTy::fun(
                    SimpleTy::fun(SimpleTy::Bool, SimpleTy::Unit),
                    SimpleTy::Unit,
                ),
            ),
        );
        assert_eq!(c, expected);
    }

    #[test]
    fn cps_output_is_normal() {
        let q = cps_of(
            "let f x g = g (x + 1) in
             let h y = assert (y > 0) in
             let k n = if n > 0 then f n h else () in
             k rand_int",
        );
        assert!(q.is_cps_normal(), "not in CPS normal form:\n{q}");
    }

    #[test]
    fn non_tail_calls_get_lifted_continuations() {
        let q = cps_of("let rec sum n = if n <= 0 then 0 else n + sum (n - 1) in assert (m <= sum m)");
        assert!(q.is_cps_normal(), "not normal:\n{q}");
        // sum's recursive call is non-tail, so a continuation must be lifted.
        assert!(
            q.defs.iter().any(|d| d.name.0.starts_with("k__")),
            "expected a lifted continuation:\n{q}"
        );
    }

    #[test]
    fn entry_point_is_closed_wrapper() {
        let q = cps_of("assert (n > 0)");
        assert_eq!(q.main.0, "__top");
        assert_eq!(q.main_def().params.len(), 1, "one unknown");
    }

    #[test]
    fn higher_order_programs_survive() {
        let q = cps_of(
            "let max2 x y = if x >= y then x else y in
             let max m2 x y z = m2 (m2 x y) z in
             let m = max max2 x y z in
             assert (max2 x m = m)",
        );
        assert!(q.is_cps_normal(), "not normal:\n{q}");
    }
}
