//! Simple types and type inference for the surface language.
//!
//! The paper's source language is simply typed (§2); we infer those simple
//! types with plain monomorphic unification. Free variables of the program
//! are resolved to `int` and reported as the program's *unknowns* — the
//! paper's "free variables (representing unknown integers)" (§6).

use std::collections::BTreeMap;
use std::fmt;

use crate::ast::{BinOp, SurfaceExpr};

/// A simple type of the paper's §2 kernel.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SimpleTy {
    /// The unit type `⋆`.
    Unit,
    /// Booleans.
    Bool,
    /// Integers.
    Int,
    /// Functions (curried).
    Fun(Box<SimpleTy>, Box<SimpleTy>),
}

impl SimpleTy {
    /// Builds `t1 → t2`.
    pub fn fun(t1: SimpleTy, t2: SimpleTy) -> SimpleTy {
        SimpleTy::Fun(Box::new(t1), Box::new(t2))
    }

    /// `true` for `unit`, `bool`, `int`.
    pub fn is_base(&self) -> bool {
        !matches!(self, SimpleTy::Fun(_, _))
    }

    /// The *order* of the type: 0 for base types,
    /// `max(order(t1) + 1, order(t2))` for `t1 → t2` — the paper's metric O.
    pub fn order(&self) -> usize {
        match self {
            SimpleTy::Fun(a, b) => (a.order() + 1).max(b.order()),
            _ => 0,
        }
    }

    /// Splits a curried type into parameters and final result.
    pub fn uncurry(&self) -> (Vec<&SimpleTy>, &SimpleTy) {
        let mut params = Vec::new();
        let mut t = self;
        while let SimpleTy::Fun(a, b) = t {
            params.push(a.as_ref());
            t = b;
        }
        (params, t)
    }
}

impl fmt::Display for SimpleTy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimpleTy::Unit => write!(f, "unit"),
            SimpleTy::Bool => write!(f, "bool"),
            SimpleTy::Int => write!(f, "int"),
            SimpleTy::Fun(a, b) => {
                if a.is_base() {
                    write!(f, "{a} -> {b}")
                } else {
                    write!(f, "({a}) -> {b}")
                }
            }
        }
    }
}

/// A type error.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TypeError(pub String);

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type error: {}", self.0)
    }
}

impl std::error::Error for TypeError {}

/// A surface expression annotated with inferred simple types.
#[derive(Clone, Debug)]
pub struct Typed {
    /// The node.
    pub expr: TExpr,
    /// Its inferred type.
    pub ty: SimpleTy,
}

/// Typed expression nodes (mirrors [`SurfaceExpr`] with resolved types).
#[derive(Clone, Debug)]
pub enum TExpr {
    /// `()`.
    Unit,
    /// Boolean literal.
    Bool(bool),
    /// Integer literal.
    Int(i64),
    /// Variable (bound or unknown-integer).
    Var(String),
    /// Binary operation; `Eq`/`Ne` are resolved to int or bool by the operand
    /// type stored on the children.
    BinOp(BinOp, Box<Typed>, Box<Typed>),
    /// Unary minus.
    Neg(Box<Typed>),
    /// Boolean not.
    Not(Box<Typed>),
    /// Application.
    App(Box<Typed>, Box<Typed>),
    /// Conditional.
    If(Box<Typed>, Box<Typed>, Box<Typed>),
    /// Let binding; `params` carry their resolved types.
    Let {
        /// Recursive?
        recursive: bool,
        /// Bound name.
        name: String,
        /// Parameters with inferred types.
        params: Vec<(String, SimpleTy)>,
        /// The type of the whole bound entity (function type when params
        /// are present).
        name_ty: SimpleTy,
        /// Right-hand side (the function body when params are present).
        rhs: Box<Typed>,
        /// Continuation.
        body: Box<Typed>,
    },
    /// Lambda with resolved parameter type.
    Fun(String, SimpleTy, Box<Typed>),
    /// Assertion.
    Assert(Box<Typed>),
    /// Assumption.
    Assume(Box<Typed>, Box<Typed>),
    /// Failure.
    Fail,
    /// Unknown integer.
    RandInt,
    /// Unknown boolean.
    RandBool,
    /// Sequencing.
    Seq(Box<Typed>, Box<Typed>),
}

/// The result of type inference.
#[derive(Clone, Debug)]
pub struct TypedProgram {
    /// The typed expression tree.
    pub root: Typed,
    /// Free variables resolved as unknown integers, in first-use order.
    pub unknowns: Vec<String>,
}

/// Infers simple types for a surface program.
pub fn infer(e: &SurfaceExpr) -> Result<TypedProgram, TypeError> {
    let mut inf = Infer::default();
    let mut env = BTreeMap::new();
    let root = inf.check(e, &mut env)?;
    inf.default_fails(&root);
    let root = inf.resolve_typed(root)?;
    Ok(TypedProgram {
        root,
        unknowns: inf.unknowns,
    })
}

/// Inference-time types: union-find indices into `Infer::nodes`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct TyVar(usize);

#[derive(Clone, Debug)]
enum Node {
    Unbound,
    Link(TyVar),
    Unit,
    Bool,
    Int,
    Fun(TyVar, TyVar),
}

#[derive(Default)]
struct Infer {
    nodes: Vec<Node>,
    unknowns: Vec<String>,
}

/// Intermediate typed tree holding unresolved `TyVar`s.
struct RawTyped {
    expr: RawExpr,
    ty: TyVar,
}

enum RawExpr {
    Unit,
    Bool(bool),
    Int(i64),
    Var(String),
    BinOp(BinOp, Box<RawTyped>, Box<RawTyped>),
    Neg(Box<RawTyped>),
    Not(Box<RawTyped>),
    App(Box<RawTyped>, Box<RawTyped>),
    If(Box<RawTyped>, Box<RawTyped>, Box<RawTyped>),
    Let {
        recursive: bool,
        name: String,
        params: Vec<(String, TyVar)>,
        name_ty: TyVar,
        rhs: Box<RawTyped>,
        body: Box<RawTyped>,
    },
    Fun(String, TyVar, Box<RawTyped>),
    Assert(Box<RawTyped>),
    Assume(Box<RawTyped>, Box<RawTyped>),
    Fail,
    RandInt,
    RandBool,
    Seq(Box<RawTyped>, Box<RawTyped>),
}

impl Infer {
    fn fresh(&mut self) -> TyVar {
        self.nodes.push(Node::Unbound);
        TyVar(self.nodes.len() - 1)
    }

    fn known(&mut self, n: Node) -> TyVar {
        self.nodes.push(n);
        TyVar(self.nodes.len() - 1)
    }

    fn find(&self, mut v: TyVar) -> TyVar {
        while let Node::Link(n) = self.nodes[v.0] {
            v = n;
        }
        v
    }

    fn unify(&mut self, a: TyVar, b: TyVar) -> Result<(), TypeError> {
        let (a, b) = (self.find(a), self.find(b));
        if a == b {
            return Ok(());
        }
        let (na, nb) = (self.nodes[a.0].clone(), self.nodes[b.0].clone());
        match (na, nb) {
            (Node::Unbound, _) => {
                self.nodes[a.0] = Node::Link(b);
                Ok(())
            }
            (_, Node::Unbound) => {
                self.nodes[b.0] = Node::Link(a);
                Ok(())
            }
            (Node::Unit, Node::Unit) | (Node::Bool, Node::Bool) | (Node::Int, Node::Int) => Ok(()),
            (Node::Fun(a1, a2), Node::Fun(b1, b2)) => {
                self.unify(a1, b1)?;
                self.unify(a2, b2)
            }
            (na, nb) => Err(TypeError(format!(
                "cannot unify {} with {}",
                self.show(&na),
                self.show(&nb)
            ))),
        }
    }

    fn show(&self, n: &Node) -> String {
        match n {
            Node::Unbound | Node::Link(_) => "_".into(),
            Node::Unit => "unit".into(),
            Node::Bool => "bool".into(),
            Node::Int => "int".into(),
            Node::Fun(a, b) => {
                let a = self.find(*a);
                let b = self.find(*b);
                format!(
                    "({} -> {})",
                    self.show(&self.nodes[a.0].clone()),
                    self.show(&self.nodes[b.0].clone())
                )
            }
        }
    }

    fn check(
        &mut self,
        e: &SurfaceExpr,
        env: &mut BTreeMap<String, TyVar>,
    ) -> Result<RawTyped, TypeError> {
        match e {
            SurfaceExpr::Unit => {
                let ty = self.known(Node::Unit);
                Ok(RawTyped {
                    expr: RawExpr::Unit,
                    ty,
                })
            }
            SurfaceExpr::Bool(b) => {
                let ty = self.known(Node::Bool);
                Ok(RawTyped {
                    expr: RawExpr::Bool(*b),
                    ty,
                })
            }
            SurfaceExpr::Int(n) => {
                let ty = self.known(Node::Int);
                Ok(RawTyped {
                    expr: RawExpr::Int(*n),
                    ty,
                })
            }
            SurfaceExpr::Var(x) => {
                let ty = match env.get(x) {
                    Some(t) => *t,
                    None => {
                        // Free variable: an unknown integer (paper §6).
                        let t = self.known(Node::Int);
                        env.insert(x.clone(), t);
                        if !self.unknowns.contains(x) {
                            self.unknowns.push(x.clone());
                        }
                        t
                    }
                };
                Ok(RawTyped {
                    expr: RawExpr::Var(x.clone()),
                    ty,
                })
            }
            SurfaceExpr::BinOp(op, a, b) => {
                let ta = self.check(a, env)?;
                let tb = self.check(b, env)?;
                let (ty, arg): (Node, Option<Node>) = match op {
                    BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => {
                        (Node::Int, Some(Node::Int))
                    }
                    BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => (Node::Bool, Some(Node::Int)),
                    BinOp::And | BinOp::Or => (Node::Bool, Some(Node::Bool)),
                    BinOp::Eq | BinOp::Ne => (Node::Bool, None),
                };
                if let Some(arg) = arg {
                    let want = self.known(arg);
                    self.unify(ta.ty, want)?;
                    self.unify(tb.ty, want)?;
                } else {
                    self.unify(ta.ty, tb.ty)?;
                }
                let ty = self.known(ty);
                Ok(RawTyped {
                    expr: RawExpr::BinOp(*op, Box::new(ta), Box::new(tb)),
                    ty,
                })
            }
            SurfaceExpr::Neg(a) => {
                let ta = self.check(a, env)?;
                let int = self.known(Node::Int);
                self.unify(ta.ty, int)?;
                Ok(RawTyped {
                    expr: RawExpr::Neg(Box::new(ta)),
                    ty: int,
                })
            }
            SurfaceExpr::Not(a) => {
                let ta = self.check(a, env)?;
                let b = self.known(Node::Bool);
                self.unify(ta.ty, b)?;
                Ok(RawTyped {
                    expr: RawExpr::Not(Box::new(ta)),
                    ty: b,
                })
            }
            SurfaceExpr::App(f, a) => {
                let tf = self.check(f, env)?;
                let ta = self.check(a, env)?;
                let res = self.fresh();
                let fun = self.known(Node::Fun(ta.ty, res));
                self.unify(tf.ty, fun)?;
                Ok(RawTyped {
                    expr: RawExpr::App(Box::new(tf), Box::new(ta)),
                    ty: res,
                })
            }
            SurfaceExpr::If(c, t, e) => {
                let tc = self.check(c, env)?;
                let b = self.known(Node::Bool);
                self.unify(tc.ty, b)?;
                let tt = self.check(t, env)?;
                let te = self.check(e, env)?;
                self.unify(tt.ty, te.ty)?;
                let ty = tt.ty;
                Ok(RawTyped {
                    expr: RawExpr::If(Box::new(tc), Box::new(tt), Box::new(te)),
                    ty,
                })
            }
            SurfaceExpr::Let {
                recursive,
                name,
                params,
                rhs,
                body,
            } => {
                let param_tys: Vec<TyVar> = params.iter().map(|_| self.fresh()).collect();
                let rhs_result = self.fresh();
                let mut name_ty = rhs_result;
                for p in param_tys.iter().rev() {
                    name_ty = self.known(Node::Fun(*p, name_ty));
                }
                let mut inner = env.clone();
                for (p, t) in params.iter().zip(&param_tys) {
                    inner.insert(p.clone(), *t);
                }
                if *recursive {
                    inner.insert(name.clone(), name_ty);
                }
                let trhs = self.check(rhs, &mut inner)?;
                self.unify(trhs.ty, rhs_result)?;
                // Propagate only the *unknowns* discovered inside back out
                // (they are program-global); let-bound names stay scoped.
                let mut outer = env.clone();
                outer.insert(name.clone(), name_ty);
                for (k, v) in inner {
                    if self.unknowns.contains(&k) {
                        outer.entry(k).or_insert(v);
                    }
                }
                *env = outer;
                let tbody = self.check(body, env)?;
                let ty = tbody.ty;
                Ok(RawTyped {
                    expr: RawExpr::Let {
                        recursive: *recursive,
                        name: name.clone(),
                        params: params.iter().cloned().zip(param_tys).collect(),
                        name_ty,
                        rhs: Box::new(trhs),
                        body: Box::new(tbody),
                    },
                    ty,
                })
            }
            SurfaceExpr::Fun(x, body) => {
                let tx = self.fresh();
                let mut inner = env.clone();
                inner.insert(x.clone(), tx);
                let tb = self.check(body, &mut inner)?;
                let ty = self.known(Node::Fun(tx, tb.ty));
                Ok(RawTyped {
                    expr: RawExpr::Fun(x.clone(), tx, Box::new(tb)),
                    ty,
                })
            }
            SurfaceExpr::Assert(a) => {
                let ta = self.check(a, env)?;
                let b = self.known(Node::Bool);
                self.unify(ta.ty, b)?;
                let ty = self.known(Node::Unit);
                Ok(RawTyped {
                    expr: RawExpr::Assert(Box::new(ta)),
                    ty,
                })
            }
            SurfaceExpr::Assume(c, body) => {
                let tc = self.check(c, env)?;
                let b = self.known(Node::Bool);
                self.unify(tc.ty, b)?;
                let tb = self.check(body, env)?;
                let ty = tb.ty;
                Ok(RawTyped {
                    expr: RawExpr::Assume(Box::new(tc), Box::new(tb)),
                    ty,
                })
            }
            SurfaceExpr::Fail => {
                // `fail` can take any type; in practice unit.
                let ty = self.fresh();
                Ok(RawTyped {
                    expr: RawExpr::Fail,
                    ty,
                })
            }
            SurfaceExpr::RandInt => {
                let ty = self.known(Node::Int);
                Ok(RawTyped {
                    expr: RawExpr::RandInt,
                    ty,
                })
            }
            SurfaceExpr::RandBool => {
                let ty = self.known(Node::Bool);
                Ok(RawTyped {
                    expr: RawExpr::RandBool,
                    ty,
                })
            }
            SurfaceExpr::Seq(a, b) => {
                let ta = self.check(a, env)?;
                let tb = self.check(b, env)?;
                let ty = tb.ty;
                Ok(RawTyped {
                    expr: RawExpr::Seq(Box::new(ta), Box::new(tb)),
                    ty,
                })
            }
        }
    }

    /// Resolves a `TyVar` to a concrete [`SimpleTy`]; unconstrained variables
    /// default to `int` (a harmless choice for programs that never use them).
    fn resolve(&mut self, v: TyVar) -> Result<SimpleTy, TypeError> {
        let v = self.find(v);
        match self.nodes[v.0].clone() {
            Node::Unbound => {
                self.nodes[v.0] = Node::Int;
                Ok(SimpleTy::Int)
            }
            Node::Unit => Ok(SimpleTy::Unit),
            Node::Bool => Ok(SimpleTy::Bool),
            Node::Int => Ok(SimpleTy::Int),
            Node::Fun(a, b) => Ok(SimpleTy::fun(self.resolve(a)?, self.resolve(b)?)),
            Node::Link(_) => unreachable!("find returned a link"),
        }
    }

    /// Pre-pass: `fail` is type-polymorphic; bind every still-unconstrained
    /// `fail` node to `unit` *before* general resolution defaults things to
    /// `int` (the kernel checker gives `fail` type unit).
    fn default_fails(&mut self, r: &RawTyped) {
        if matches!(r.expr, RawExpr::Fail) {
            let v = self.find(r.ty);
            if matches!(self.nodes[v.0], Node::Unbound) {
                self.nodes[v.0] = Node::Unit;
            }
        }
        match &r.expr {
            RawExpr::Unit
            | RawExpr::Bool(_)
            | RawExpr::Int(_)
            | RawExpr::Var(_)
            | RawExpr::Fail
            | RawExpr::RandInt
            | RawExpr::RandBool => {}
            RawExpr::BinOp(_, a, b)
            | RawExpr::App(a, b)
            | RawExpr::Assume(a, b)
            | RawExpr::Seq(a, b) => {
                self.default_fails(a);
                self.default_fails(b);
            }
            RawExpr::Neg(a) | RawExpr::Not(a) | RawExpr::Assert(a) | RawExpr::Fun(_, _, a) => {
                self.default_fails(a)
            }
            RawExpr::If(c, t, e) => {
                self.default_fails(c);
                self.default_fails(t);
                self.default_fails(e);
            }
            RawExpr::Let { rhs, body, .. } => {
                self.default_fails(rhs);
                self.default_fails(body);
            }
        }
    }

    fn resolve_typed(&mut self, r: RawTyped) -> Result<Typed, TypeError> {
        let ty = self.resolve(r.ty)?;
        let expr = match r.expr {
            RawExpr::Unit => TExpr::Unit,
            RawExpr::Bool(b) => TExpr::Bool(b),
            RawExpr::Int(n) => TExpr::Int(n),
            RawExpr::Var(x) => TExpr::Var(x),
            RawExpr::BinOp(op, a, b) => TExpr::BinOp(
                op,
                Box::new(self.resolve_typed(*a)?),
                Box::new(self.resolve_typed(*b)?),
            ),
            RawExpr::Neg(a) => TExpr::Neg(Box::new(self.resolve_typed(*a)?)),
            RawExpr::Not(a) => TExpr::Not(Box::new(self.resolve_typed(*a)?)),
            RawExpr::App(f, a) => TExpr::App(
                Box::new(self.resolve_typed(*f)?),
                Box::new(self.resolve_typed(*a)?),
            ),
            RawExpr::If(c, t, e) => TExpr::If(
                Box::new(self.resolve_typed(*c)?),
                Box::new(self.resolve_typed(*t)?),
                Box::new(self.resolve_typed(*e)?),
            ),
            RawExpr::Let {
                recursive,
                name,
                params,
                name_ty,
                rhs,
                body,
            } => TExpr::Let {
                recursive,
                name,
                params: params
                    .into_iter()
                    .map(|(p, t)| Ok((p, self.resolve(t)?)))
                    .collect::<Result<_, TypeError>>()?,
                name_ty: self.resolve(name_ty)?,
                rhs: Box::new(self.resolve_typed(*rhs)?),
                body: Box::new(self.resolve_typed(*body)?),
            },
            RawExpr::Fun(x, t, body) => TExpr::Fun(
                x,
                self.resolve(t)?,
                Box::new(self.resolve_typed(*body)?),
            ),
            RawExpr::Assert(a) => TExpr::Assert(Box::new(self.resolve_typed(*a)?)),
            RawExpr::Assume(c, b) => TExpr::Assume(
                Box::new(self.resolve_typed(*c)?),
                Box::new(self.resolve_typed(*b)?),
            ),
            RawExpr::Fail => TExpr::Fail,
            RawExpr::RandInt => TExpr::RandInt,
            RawExpr::RandBool => TExpr::RandBool,
            RawExpr::Seq(a, b) => TExpr::Seq(
                Box::new(self.resolve_typed(*a)?),
                Box::new(self.resolve_typed(*b)?),
            ),
        };
        Ok(Typed { expr, ty })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn ty_of(src: &str) -> SimpleTy {
        infer(&parse(src).expect("parses")).expect("types").root.ty
    }

    #[test]
    fn base_types() {
        assert_eq!(ty_of("1 + 2"), SimpleTy::Int);
        assert_eq!(ty_of("1 < 2"), SimpleTy::Bool);
        assert_eq!(ty_of("()"), SimpleTy::Unit);
        assert_eq!(ty_of("assert (1 = 1)"), SimpleTy::Unit);
    }

    #[test]
    fn higher_order() {
        // let f x g = g (x + 1) in f : int -> (int -> 'a) -> 'a   ('a := int)
        let t = ty_of("let f x g = g (x + 1) in f");
        assert_eq!(
            t,
            SimpleTy::fun(
                SimpleTy::Int,
                SimpleTy::fun(SimpleTy::fun(SimpleTy::Int, SimpleTy::Int), SimpleTy::Int)
            )
        );
        assert_eq!(t.order(), 2);
    }

    #[test]
    fn free_variables_become_unknown_ints() {
        let tp = infer(&parse("assert (n > 0)").expect("parses")).expect("types");
        assert_eq!(tp.unknowns, vec!["n".to_string()]);
    }

    #[test]
    fn unknowns_propagate_from_let_rhs() {
        let tp = infer(&parse("let f x = x + m in f 1").expect("parses")).expect("types");
        assert_eq!(tp.unknowns, vec!["m".to_string()]);
    }

    #[test]
    fn type_errors_are_reported() {
        let e = parse("1 + true").expect("parses");
        assert!(infer(&e).is_err());
        let e = parse("if 1 then 2 else 3").expect("parses");
        assert!(infer(&e).is_err());
    }

    #[test]
    fn recursion() {
        let t = ty_of("let rec sum n = if n <= 0 then 0 else n + sum (n - 1) in sum");
        assert_eq!(t, SimpleTy::fun(SimpleTy::Int, SimpleTy::Int));
        assert_eq!(t.order(), 1);
    }

    #[test]
    fn equality_resolves_by_operand() {
        assert_eq!(ty_of("true = false"), SimpleTy::Bool);
        assert_eq!(ty_of("1 = 2"), SimpleTy::Bool);
    }
}
