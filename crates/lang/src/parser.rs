//! Recursive-descent parser for the surface language.

use crate::ast::{BinOp, SurfaceExpr};
use crate::lexer::{lex, ParseError, Token};

/// Parses a whole program: one expression, usually a `let … in` chain whose
/// final expression is the body to verify.
pub fn parse(src: &str) -> Result<SurfaceExpr, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let e = p.expr()?;
    if p.pos != p.tokens.len() {
        return Err(p.error("trailing input after program"));
    }
    Ok(e)
}

struct Parser {
    tokens: Vec<(Token, usize)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(t, _)| t)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Kw(k)) if *k == kw)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.error(format!("expected `{kw}`")))
        }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        let position = self
            .tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map(|(_, p)| *p)
            .unwrap_or(0);
        ParseError {
            message: message.into(),
            position,
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Some(Token::Ident(s)) => Ok(s),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.error("expected identifier"))
            }
        }
    }

    /// expr := let | if | fun | assume | seq
    fn expr(&mut self) -> Result<SurfaceExpr, ParseError> {
        if self.eat_kw("let") {
            let recursive = self.eat_kw("rec");
            let name = self.ident()?;
            let mut params = Vec::new();
            loop {
                match self.peek() {
                    Some(Token::Ident(_)) => params.push(self.ident()?),
                    Some(Token::Kw("(")) => {
                        // Allow a unit parameter `let k () = …`.
                        let save = self.pos;
                        self.pos += 1;
                        if self.eat_kw(")") {
                            params.push("_unit".to_string());
                        } else {
                            self.pos = save;
                            break;
                        }
                    }
                    _ => break,
                }
            }
            self.expect_kw("=")?;
            let rhs = self.expr()?;
            self.expect_kw("in")?;
            let body = self.expr()?;
            return Ok(SurfaceExpr::Let {
                recursive,
                name,
                params,
                rhs: Box::new(rhs),
                body: Box::new(body),
            });
        }
        if self.eat_kw("if") {
            let c = self.expr()?;
            self.expect_kw("then")?;
            let t = self.expr()?;
            self.expect_kw("else")?;
            let e = self.expr()?;
            return Ok(SurfaceExpr::If(Box::new(c), Box::new(t), Box::new(e)));
        }
        if self.eat_kw("fun") {
            let mut params = vec![self.ident()?];
            while let Some(Token::Ident(_)) = self.peek() {
                params.push(self.ident()?);
            }
            self.expect_kw("->")?;
            let mut body = self.expr()?;
            for p in params.into_iter().rev() {
                body = SurfaceExpr::Fun(p, Box::new(body));
            }
            return Ok(body);
        }
        if self.eat_kw("assume") {
            let c = self.unary()?;
            self.expect_kw(";")?;
            let body = self.expr()?;
            return Ok(SurfaceExpr::Assume(Box::new(c), Box::new(body)));
        }
        self.seq()
    }

    /// seq := disj (";" expr)?
    fn seq(&mut self) -> Result<SurfaceExpr, ParseError> {
        let first = self.disj()?;
        if self.eat_kw(";") {
            let rest = self.expr()?;
            Ok(SurfaceExpr::Seq(Box::new(first), Box::new(rest)))
        } else {
            Ok(first)
        }
    }

    fn disj(&mut self) -> Result<SurfaceExpr, ParseError> {
        let mut e = self.conj()?;
        while self.eat_kw("||") {
            let r = self.conj()?;
            e = SurfaceExpr::BinOp(BinOp::Or, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn conj(&mut self) -> Result<SurfaceExpr, ParseError> {
        let mut e = self.cmp()?;
        while self.eat_kw("&&") {
            let r = self.cmp()?;
            e = SurfaceExpr::BinOp(BinOp::And, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn cmp(&mut self) -> Result<SurfaceExpr, ParseError> {
        let e = self.addsub()?;
        let op = match self.peek() {
            Some(Token::Kw("=")) => Some(BinOp::Eq),
            Some(Token::Kw("<>")) => Some(BinOp::Ne),
            Some(Token::Kw("<")) => Some(BinOp::Lt),
            Some(Token::Kw("<=")) => Some(BinOp::Le),
            Some(Token::Kw(">")) => Some(BinOp::Gt),
            Some(Token::Kw(">=")) => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let r = self.addsub()?;
            Ok(SurfaceExpr::BinOp(op, Box::new(e), Box::new(r)))
        } else {
            Ok(e)
        }
    }

    fn addsub(&mut self) -> Result<SurfaceExpr, ParseError> {
        let mut e = self.mul()?;
        loop {
            if self.eat_kw("+") {
                let r = self.mul()?;
                e = SurfaceExpr::BinOp(BinOp::Add, Box::new(e), Box::new(r));
            } else if self.eat_kw("-") {
                let r = self.mul()?;
                e = SurfaceExpr::BinOp(BinOp::Sub, Box::new(e), Box::new(r));
            } else {
                return Ok(e);
            }
        }
    }

    fn mul(&mut self) -> Result<SurfaceExpr, ParseError> {
        let mut e = self.unary()?;
        loop {
            if self.eat_kw("*") {
                let r = self.unary()?;
                e = SurfaceExpr::BinOp(BinOp::Mul, Box::new(e), Box::new(r));
            } else if self.eat_kw("/") {
                let r = self.unary()?;
                e = SurfaceExpr::BinOp(BinOp::Div, Box::new(e), Box::new(r));
            } else {
                return Ok(e);
            }
        }
    }

    fn unary(&mut self) -> Result<SurfaceExpr, ParseError> {
        if self.eat_kw("-") {
            let e = self.unary()?;
            return Ok(SurfaceExpr::Neg(Box::new(e)));
        }
        if self.eat_kw("not") {
            let e = self.unary()?;
            return Ok(SurfaceExpr::Not(Box::new(e)));
        }
        self.app()
    }

    /// app := atom+ — also handles `assert e` and the built-in randoms.
    fn app(&mut self) -> Result<SurfaceExpr, ParseError> {
        if self.eat_kw("assert") {
            let e = self.atom()?;
            return Ok(SurfaceExpr::Assert(Box::new(e)));
        }
        let mut e = self.atom()?;
        while self.starts_atom() {
            let a = self.atom()?;
            e = match e {
                // `fail ()`, `rand_int ()` and friends: the unit argument is
                // decoration, not application.
                SurfaceExpr::Fail | SurfaceExpr::RandInt | SurfaceExpr::RandBool
                    if a == SurfaceExpr::Unit =>
                {
                    e
                }
                e => SurfaceExpr::App(Box::new(e), Box::new(a)),
            };
        }
        Ok(e)
    }

    fn starts_atom(&self) -> bool {
        matches!(
            self.peek(),
            Some(Token::Int(_))
                | Some(Token::Ident(_))
                | Some(Token::Kw("("))
                | Some(Token::Kw("true"))
                | Some(Token::Kw("false"))
                | Some(Token::Kw("fail"))
        )
    }

    fn atom(&mut self) -> Result<SurfaceExpr, ParseError> {
        match self.bump() {
            Some(Token::Int(n)) => Ok(SurfaceExpr::Int(n)),
            Some(Token::Kw("true")) => Ok(SurfaceExpr::Bool(true)),
            Some(Token::Kw("false")) => Ok(SurfaceExpr::Bool(false)),
            Some(Token::Kw("fail")) => Ok(SurfaceExpr::Fail),
            Some(Token::Ident(s)) => Ok(match s.as_str() {
                "rand_int" | "randi" => SurfaceExpr::RandInt,
                "rand_bool" | "randb" => SurfaceExpr::RandBool,
                _ => SurfaceExpr::Var(s),
            }),
            Some(Token::Kw("(")) => {
                if self.eat_kw(")") {
                    return Ok(SurfaceExpr::Unit);
                }
                let e = self.expr()?;
                self.expect_kw(")")?;
                Ok(e)
            }
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.error("expected an atomic expression"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_m1() {
        // The paper's §1 program M1, in the surface syntax.
        let src = r#"
            let f x g = g (x + 1) in
            let h y = assert (y > 0) in
            let k n = if n > 0 then f n h else () in
            k rand_int
        "#;
        let e = parse(src).expect("parses");
        match e {
            SurfaceExpr::Let { name, .. } => assert_eq!(name, "f"),
            other => panic!("expected Let, got {other:?}"),
        }
    }

    #[test]
    fn precedence() {
        // 1 + 2 * 3 = 7 parses as (1 + (2*3)) = 7
        let e = parse("1 + 2 * 3 = 7").expect("parses");
        match e {
            SurfaceExpr::BinOp(BinOp::Eq, l, _) => match *l {
                SurfaceExpr::BinOp(BinOp::Add, _, r) => {
                    assert!(matches!(*r, SurfaceExpr::BinOp(BinOp::Mul, _, _)))
                }
                other => panic!("expected Add, got {other:?}"),
            },
            other => panic!("expected Eq, got {other:?}"),
        }
    }

    #[test]
    fn application_binds_tighter_than_ops() {
        // f x + 1 is (f x) + 1
        let e = parse("f x + 1").expect("parses");
        assert!(matches!(e, SurfaceExpr::BinOp(BinOp::Add, _, _)));
    }

    #[test]
    fn unit_params_and_calls() {
        let e = parse("let k _u = fail () in k ()").expect("parses");
        match e {
            SurfaceExpr::Let { rhs, .. } => assert_eq!(*rhs, SurfaceExpr::Fail),
            other => panic!("expected Let, got {other:?}"),
        }
    }

    #[test]
    fn let_rec_and_if() {
        let src = "let rec sum n = if n <= 0 then 0 else n + sum (n - 1) in assert (n <= sum n)";
        let e = parse(src).expect("parses");
        match e {
            SurfaceExpr::Let {
                recursive, body, ..
            } => {
                assert!(recursive);
                assert!(matches!(*body, SurfaceExpr::Assert(_)));
            }
            other => panic!("expected Let, got {other:?}"),
        }
    }

    #[test]
    fn fun_sugar() {
        let e = parse("fun x y -> x + y").expect("parses");
        assert!(matches!(e, SurfaceExpr::Fun(_, _)));
    }

    #[test]
    fn rejects_unbalanced_parens() {
        assert!(parse("(1 + 2").is_err());
        assert!(parse("let x = in y").is_err());
    }

    #[test]
    fn seq_and_assume() {
        let e = parse("assume (x > 0); f x; ()").expect("parses");
        assert!(matches!(e, SurfaceExpr::Assume(_, _)));
    }
}
