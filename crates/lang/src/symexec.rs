//! Symbolic execution of a kernel program along a fixed choice path.
//!
//! This is the engine behind the paper's §5.1 feasibility check: given the
//! `0/1` labels of an abstract counterexample, execute the source program
//! symbolically along that path, collecting every `assume` condition. The
//! path is feasible iff the collected conjunction is satisfiable (the paper
//! runs CVC3 here; we run [`homc_smt::SmtSolver`]).

use std::collections::BTreeMap;
use std::fmt;

use homc_smt::{Atom, Formula, LinExpr, Var};

use crate::eval::Label;
use crate::kernel::{Const, Expr, FunName, Op, Program, Value};

/// A symbolic runtime value.
#[derive(Clone, Debug)]
pub enum SVal {
    /// `()`.
    Unit,
    /// A boolean, as a formula over the symbolic integers.
    Bool(Formula),
    /// An integer, as a linear expression over symbol variables.
    Int(LinExpr),
    /// A (possibly partial) application of a top-level function.
    Closure(FunName, Vec<SVal>),
}

/// Why a symbolic replay ended.
#[derive(Clone, Debug)]
pub enum ReplayEnd {
    /// `fail` was reached; the path condition decides feasibility.
    ReachedFail,
    /// The program finished without failing (the path does not lead to
    /// `fail` in the source program).
    Finished,
    /// The label script ran out before the program finished.
    LabelsExhausted,
    /// The fuel budget ran out.
    OutOfFuel,
}

/// The result of a symbolic replay.
#[derive(Clone, Debug)]
pub struct Replay {
    /// How the replay ended.
    pub end: ReplayEnd,
    /// The branch/assume conditions collected along the path, in order.
    pub conditions: Vec<Formula>,
    /// `false` when a non-linear operation was over-approximated by a fresh
    /// symbol, in which case feasibility answers may be spurious.
    pub exact: bool,
    /// The symbols created for `main`'s unknown parameters, in order.
    pub unknowns: Vec<Var>,
}

impl Replay {
    /// The path condition as a single conjunction.
    pub fn path_condition(&self) -> Formula {
        Formula::and(self.conditions.iter().cloned())
    }
}

impl fmt::Display for Replay {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}: {}", self.end, self.path_condition())
    }
}

/// Replays `program` along `labels`, starting from `main` with fresh
/// symbolic unknowns.
pub fn replay(program: &Program, labels: &[Label], fuel: u64) -> Replay {
    let mut st = Sym {
        program,
        labels,
        pos: 0,
        fuel,
        counter: 0,
        conditions: Vec::new(),
        exact: true,
    };
    let main = program.main_def();
    let mut env = BTreeMap::new();
    let mut unknowns = Vec::new();
    for (x, _) in &main.params {
        let s = st.fresh_sym(x.name());
        unknowns.push(s.clone());
        env.insert(x.clone(), SVal::Int(LinExpr::var(s)));
    }
    let end = st.exec(env, &main.body);
    Replay {
        end,
        conditions: st.conditions,
        exact: st.exact,
        unknowns,
    }
}

struct Sym<'a> {
    program: &'a Program,
    labels: &'a [Label],
    pos: usize,
    fuel: u64,
    counter: usize,
    conditions: Vec<Formula>,
    exact: bool,
}

impl<'a> Sym<'a> {
    fn fresh_sym(&mut self, base: &str) -> Var {
        self.counter += 1;
        Var::new(format!("{base}#{}", self.counter))
    }

    fn value(&self, env: &BTreeMap<Var, SVal>, v: &Value) -> SVal {
        match v {
            Value::Const(Const::Unit) => SVal::Unit,
            Value::Const(Const::Bool(b)) => SVal::Bool(if *b {
                Formula::True
            } else {
                Formula::False
            }),
            Value::Const(Const::Int(n)) => SVal::Int(LinExpr::constant(*n as i128)),
            Value::Var(x) => env
                .get(x)
                .cloned()
                .unwrap_or_else(|| panic!("unbound variable {x} in symbolic execution")),
            Value::Fun(f) => SVal::Closure(f.clone(), Vec::new()),
            Value::PApp(h, args) => {
                let head = self.value(env, h);
                let mut extra: Vec<SVal> = args.iter().map(|a| self.value(env, a)).collect();
                match head {
                    SVal::Closure(f, mut prev) => {
                        prev.append(&mut extra);
                        SVal::Closure(f, prev)
                    }
                    other => panic!("application of non-closure {other:?}"),
                }
            }
        }
    }

    fn as_int(&mut self, v: SVal) -> LinExpr {
        match v {
            SVal::Int(e) => e,
            other => panic!("expected symbolic int, got {other:?}"),
        }
    }

    fn as_bool(&mut self, v: SVal) -> Formula {
        match v {
            SVal::Bool(f) => f,
            other => panic!("expected symbolic bool, got {other:?}"),
        }
    }

    fn op(&mut self, op: Op, args: Vec<SVal>) -> SVal {
        let mut args = args.into_iter();
        match op {
            Op::Add | Op::Sub => {
                let a = self.as_int(args.next().expect("arity"));
                let b = self.as_int(args.next().expect("arity"));
                SVal::Int(if op == Op::Add { a + b } else { a - b })
            }
            Op::Neg => {
                let a = self.as_int(args.next().expect("arity"));
                SVal::Int(-a)
            }
            Op::Mul => {
                let a = self.as_int(args.next().expect("arity"));
                let b = self.as_int(args.next().expect("arity"));
                if a.is_constant() {
                    SVal::Int(b * a.constant_part())
                } else if b.is_constant() {
                    SVal::Int(a * b.constant_part())
                } else {
                    // Non-linear: over-approximate with a fresh symbol.
                    self.exact = false;
                    SVal::Int(LinExpr::var(self.fresh_sym("mul")))
                }
            }
            Op::Div => {
                self.exact = false;
                SVal::Int(LinExpr::var(self.fresh_sym("div")))
            }
            Op::Lt | Op::Le | Op::Gt | Op::Ge | Op::EqInt => {
                let a = self.as_int(args.next().expect("arity"));
                let b = self.as_int(args.next().expect("arity"));
                let atom = match op {
                    Op::Lt => Atom::lt(a, b),
                    Op::Le => Atom::le(a, b),
                    Op::Gt => Atom::gt(a, b),
                    Op::Ge => Atom::ge(a, b),
                    Op::EqInt => Atom::eq(a, b),
                    _ => unreachable!(),
                };
                SVal::Bool(Formula::atom(atom))
            }
            Op::EqBool => {
                let a = self.as_bool(args.next().expect("arity"));
                let b = self.as_bool(args.next().expect("arity"));
                SVal::Bool(Formula::iff(a, b))
            }
            Op::And => {
                let a = self.as_bool(args.next().expect("arity"));
                let b = self.as_bool(args.next().expect("arity"));
                SVal::Bool(Formula::and2(a, b))
            }
            Op::Or => {
                let a = self.as_bool(args.next().expect("arity"));
                let b = self.as_bool(args.next().expect("arity"));
                SVal::Bool(Formula::or2(a, b))
            }
            Op::Not => {
                let a = self.as_bool(args.next().expect("arity"));
                SVal::Bool(Formula::not(a))
            }
        }
    }

    fn exec(&mut self, mut env: BTreeMap<Var, SVal>, mut expr: &'a Expr) -> ReplayEnd {
        loop {
            if self.fuel == 0 {
                return ReplayEnd::OutOfFuel;
            }
            self.fuel -= 1;
            match expr {
                Expr::Value(_) | Expr::Op(_, _) | Expr::Rand => return ReplayEnd::Finished,
                Expr::Fail => return ReplayEnd::ReachedFail,
                Expr::Assume(v, body) => {
                    let c = self.value(&env, v);
                    let f = self.as_bool(c);
                    self.conditions.push(f);
                    expr = body;
                }
                Expr::Choice(l, r) => {
                    let Some(lab) = self.labels.get(self.pos) else {
                        return ReplayEnd::LabelsExhausted;
                    };
                    self.pos += 1;
                    expr = match lab {
                        Label::Zero => l,
                        Label::One => r,
                    };
                }
                Expr::Let(x, rhs, body) => {
                    match rhs.as_ref() {
                        Expr::Value(v) => {
                            let sv = self.value(&env, v);
                            env.insert(x.clone(), sv);
                        }
                        Expr::Op(op, args) => {
                            let vals: Vec<SVal> =
                                args.iter().map(|a| self.value(&env, a)).collect();
                            let sv = self.op(*op, vals);
                            env.insert(x.clone(), sv);
                        }
                        Expr::Rand => {
                            let s = self.fresh_sym("rnd");
                            env.insert(x.clone(), SVal::Int(LinExpr::var(s)));
                        }
                        rhs => {
                            // A serious rhs: execute it inline. Because we
                            // only ever replay CPS-normal programs (where
                            // this case cannot arise) or fail along the rhs,
                            // finishing the rhs without a value ends replay.
                            return self.exec(env, rhs);
                        }
                    }
                    expr = body;
                }
                Expr::Call(f, args) => {
                    let head = self.value(&env, f);
                    let mut vals: Vec<SVal> = args.iter().map(|a| self.value(&env, a)).collect();
                    let SVal::Closure(fname, mut prev) = head else {
                        panic!("calling non-closure in symbolic execution");
                    };
                    prev.append(&mut vals);
                    let def = self
                        .program
                        .def(&fname)
                        .unwrap_or_else(|| panic!("undefined function {fname}"));
                    let mut new_env = BTreeMap::new();
                    for ((x, _), v) in def.params.iter().zip(prev) {
                        new_env.insert(x.clone(), v);
                    }
                    env = new_env;
                    expr = &def.body;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cps::cps_transform;
    use crate::elaborate::elaborate;
    use crate::parser::parse;
    use crate::types::infer;
    use homc_smt::SmtSolver;

    fn cps_of(src: &str) -> Program {
        let tp = infer(&parse(src).expect("parses")).expect("types");
        let p = elaborate(&tp).expect("elaborates");
        cps_transform(&p)
    }

    #[test]
    fn feasible_failure_path() {
        // assert (n > 0) fails when n <= 0; labels: else branch = 1.
        let p = cps_of("assert (n > 0)");
        let r = replay(&p, &[Label::One], 10_000);
        assert!(matches!(r.end, ReplayEnd::ReachedFail), "{r}");
        assert!(SmtSolver::new().maybe_sat(&r.path_condition()));
    }

    #[test]
    fn infeasible_failure_path_paper_m1() {
        // M1 from §1: the error path takes the then-branch of k (n > 0) and
        // the else-branch of the assert (n + 1 <= 0): infeasible.
        let p = cps_of(
            "let f x g = g (x + 1) in
             let h y = assert (y > 0) in
             let k n = if n > 0 then f n h else () in
             k m",
        );
        let r = replay(&p, &[Label::Zero, Label::One], 10_000);
        assert!(matches!(r.end, ReplayEnd::ReachedFail), "{r}");
        assert!(
            !SmtSolver::new().maybe_sat(&r.path_condition()),
            "path must be infeasible: {}",
            r.path_condition()
        );
    }

    #[test]
    fn safe_path_finishes() {
        let p = cps_of("assert (n > 0)");
        let r = replay(&p, &[Label::Zero], 10_000);
        assert!(matches!(r.end, ReplayEnd::Finished), "{r}");
    }

    #[test]
    fn exhausted_labels_reported() {
        let p = cps_of("assert (n > 0)");
        let r = replay(&p, &[], 10_000);
        assert!(matches!(r.end, ReplayEnd::LabelsExhausted), "{r}");
    }
}
