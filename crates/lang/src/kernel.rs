//! The kernel intermediate representation — the paper's §2 language.
//!
//! A program is a set of first-order-style definitions `f x̃ = e` over a
//! call-by-value expression language with `let`, full applications, partial
//! applications as values, non-deterministic choice `e₁ ⊓ e₂`, `assume`, and
//! `fail`. Conditionals are desugared per §2:
//!
//! ```text
//! if v then e1 else e2  ≡  (assume v; e1) ⊓ (let x = ¬v in assume x; e2)
//! ```
//!
//! Unknown integers appear as parameters of `main` (free variables of the
//! surface program) or as `let x = rand_int in …` bindings.

use std::collections::BTreeMap;
use std::fmt;

use homc_smt::Var;

use crate::types::SimpleTy;

/// A top-level function name.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FunName(pub String);

impl fmt::Debug for FunName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for FunName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for FunName {
    fn from(s: &str) -> FunName {
        FunName(s.to_string())
    }
}

/// Primitive operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Op {
    /// Integer addition.
    Add,
    /// Integer subtraction.
    Sub,
    /// Integer multiplication.
    Mul,
    /// Integer division.
    Div,
    /// Unary integer negation.
    Neg,
    /// `<` on integers.
    Lt,
    /// `<=` on integers.
    Le,
    /// `>` on integers.
    Gt,
    /// `>=` on integers.
    Ge,
    /// `=` on integers.
    EqInt,
    /// `=` on booleans.
    EqBool,
    /// Boolean conjunction.
    And,
    /// Boolean disjunction.
    Or,
    /// Boolean negation.
    Not,
}

impl Op {
    /// The result type of the operator.
    pub fn result_ty(self) -> SimpleTy {
        match self {
            Op::Add | Op::Sub | Op::Mul | Op::Div | Op::Neg => SimpleTy::Int,
            _ => SimpleTy::Bool,
        }
    }

    /// The argument types of the operator.
    pub fn arg_tys(self) -> Vec<SimpleTy> {
        match self {
            Op::Add | Op::Sub | Op::Mul | Op::Div => vec![SimpleTy::Int, SimpleTy::Int],
            Op::Neg => vec![SimpleTy::Int],
            Op::Lt | Op::Le | Op::Gt | Op::Ge | Op::EqInt => vec![SimpleTy::Int, SimpleTy::Int],
            Op::EqBool | Op::And | Op::Or => vec![SimpleTy::Bool, SimpleTy::Bool],
            Op::Not => vec![SimpleTy::Bool],
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Op::Add => "+",
            Op::Sub => "-",
            Op::Mul => "*",
            Op::Div => "/",
            Op::Neg => "~-",
            Op::Lt => "<",
            Op::Le => "<=",
            Op::Gt => ">",
            Op::Ge => ">=",
            Op::EqInt => "=",
            Op::EqBool => "=b",
            Op::And => "&&",
            Op::Or => "||",
            Op::Not => "not",
        };
        write!(f, "{s}")
    }
}

/// Base-type constants.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Const {
    /// `()`.
    Unit,
    /// Boolean.
    Bool(bool),
    /// Integer.
    Int(i64),
}

impl Const {
    /// The constant's type.
    pub fn ty(self) -> SimpleTy {
        match self {
            Const::Unit => SimpleTy::Unit,
            Const::Bool(_) => SimpleTy::Bool,
            Const::Int(_) => SimpleTy::Int,
        }
    }
}

impl fmt::Display for Const {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Const::Unit => write!(f, "()"),
            Const::Bool(b) => write!(f, "{b}"),
            Const::Int(n) => write!(f, "{n}"),
        }
    }
}

/// Values: constants, variables, function names, and partial applications.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Value {
    /// A constant.
    Const(Const),
    /// A variable.
    Var(Var),
    /// A top-level function.
    Fun(FunName),
    /// A partial application `h v₁ … vₖ` (strictly fewer arguments than the
    /// head's full type arity).
    PApp(Box<Value>, Vec<Value>),
}

impl Value {
    /// `()`.
    pub fn unit() -> Value {
        Value::Const(Const::Unit)
    }

    /// A boolean constant.
    pub fn bool(b: bool) -> Value {
        Value::Const(Const::Bool(b))
    }

    /// An integer constant.
    pub fn int(n: i64) -> Value {
        Value::Const(Const::Int(n))
    }

    /// A variable reference.
    pub fn var(v: impl Into<Var>) -> Value {
        Value::Var(v.into())
    }

    /// Applies more arguments to a value, flattening nested partial
    /// applications.
    pub fn papp(self, args: Vec<Value>) -> Value {
        if args.is_empty() {
            return self;
        }
        match self {
            Value::PApp(h, mut prev) => {
                prev.extend(args);
                Value::PApp(h, prev)
            }
            head => Value::PApp(Box::new(head), args),
        }
    }

    /// The head and the accumulated argument list of a (possibly partial)
    /// application; a non-application is its own head with no arguments.
    pub fn uncurry(&self) -> (&Value, Vec<&Value>) {
        match self {
            Value::PApp(h, args) => {
                let (head, mut inner) = h.uncurry();
                inner.extend(args.iter());
                (head, inner)
            }
            v => (v, Vec::new()),
        }
    }

    /// Collects free variables into `out`.
    pub fn free_vars(&self, out: &mut Vec<Var>) {
        match self {
            Value::Const(_) | Value::Fun(_) => {}
            Value::Var(v) => {
                if !out.contains(v) {
                    out.push(v.clone());
                }
            }
            Value::PApp(h, args) => {
                h.free_vars(out);
                for a in args {
                    a.free_vars(out);
                }
            }
        }
    }
}

/// Kernel expressions.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Expr {
    /// Return a value.
    Value(Value),
    /// Full application (saturates the callee's type arity up to a base
    /// result pre-CPS; returns `unit` post-CPS).
    Call(Value, Vec<Value>),
    /// Primitive operation on values.
    Op(Op, Vec<Value>),
    /// An unknown integer.
    Rand,
    /// `let x = e₁ in e₂`.
    Let(Var, Box<Expr>, Box<Expr>),
    /// Source-level non-deterministic choice `e₁ ⊓ e₂` (labels 0/1).
    Choice(Box<Expr>, Box<Expr>),
    /// `assume v; e`.
    Assume(Value, Box<Expr>),
    /// Failure.
    Fail,
}

impl Expr {
    /// `let x = rhs in body`.
    pub fn let_(x: impl Into<Var>, rhs: Expr, body: Expr) -> Expr {
        Expr::Let(x.into(), Box::new(rhs), Box::new(body))
    }

    /// `e₁ ⊓ e₂`.
    pub fn choice(l: Expr, r: Expr) -> Expr {
        Expr::Choice(Box::new(l), Box::new(r))
    }

    /// `assume v; e`.
    pub fn assume(v: Value, e: Expr) -> Expr {
        Expr::Assume(v, Box::new(e))
    }

    /// Collects free variables (excluding function names) into `out`.
    pub fn free_vars(&self, bound: &mut Vec<Var>, out: &mut Vec<Var>) {
        let value_fvs = |v: &Value, bound: &Vec<Var>, out: &mut Vec<Var>| {
            let mut vs = Vec::new();
            v.free_vars(&mut vs);
            for v in vs {
                if !bound.contains(&v) && !out.contains(&v) {
                    out.push(v);
                }
            }
        };
        match self {
            Expr::Value(v) => value_fvs(v, bound, out),
            Expr::Call(f, args) => {
                value_fvs(f, bound, out);
                for a in args {
                    value_fvs(a, bound, out);
                }
            }
            Expr::Op(_, args) => {
                for a in args {
                    value_fvs(a, bound, out);
                }
            }
            Expr::Rand | Expr::Fail => {}
            Expr::Let(x, rhs, body) => {
                rhs.free_vars(bound, out);
                bound.push(x.clone());
                body.free_vars(bound, out);
                bound.pop();
            }
            Expr::Choice(l, r) => {
                l.free_vars(bound, out);
                r.free_vars(bound, out);
            }
            Expr::Assume(v, e) => {
                value_fvs(v, bound, out);
                e.free_vars(bound, out);
            }
        }
    }

    /// Number of AST nodes.
    pub fn size(&self) -> usize {
        match self {
            Expr::Value(_) | Expr::Op(_, _) | Expr::Rand | Expr::Fail | Expr::Call(_, _) => 1,
            Expr::Let(_, r, b) => 1 + r.size() + b.size(),
            Expr::Choice(l, r) => 1 + l.size() + r.size(),
            Expr::Assume(_, e) => 1 + e.size(),
        }
    }
}

/// A top-level function definition `f x̃ = e`.
#[derive(Clone, Debug)]
pub struct Def {
    /// The function name.
    pub name: FunName,
    /// Parameters with their simple types.
    pub params: Vec<(Var, SimpleTy)>,
    /// The result type of the body.
    pub ret: SimpleTy,
    /// The body.
    pub body: Expr,
}

impl Def {
    /// The function's full simple type.
    pub fn ty(&self) -> SimpleTy {
        self.params
            .iter()
            .rev()
            .fold(self.ret.clone(), |acc, (_, t)| SimpleTy::fun(t.clone(), acc))
    }
}

/// A kernel program: definitions plus a designated `main`.
///
/// `main`'s parameters are the program's unknown integers; verification asks
/// whether `main ũ` can reach `fail` for *some* integers `ũ` (and some
/// resolution of the non-deterministic choices).
#[derive(Clone, Debug)]
pub struct Program {
    /// All definitions, in a stable order.
    pub defs: Vec<Def>,
    /// The entry point.
    pub main: FunName,
}

impl Program {
    /// Looks up a definition by name.
    pub fn def(&self, name: &FunName) -> Option<&Def> {
        self.defs.iter().find(|d| &d.name == name)
    }

    /// The entry definition.
    ///
    /// # Panics
    ///
    /// Panics when `main` is missing (programs constructed by [`crate::elaborate`]
    /// always have it).
    pub fn main_def(&self) -> &Def {
        self.def(&self.main).expect("main must exist")
    }

    /// The paper's order metric O: the largest order among the types of the
    /// program's functions.
    pub fn order(&self) -> usize {
        self.defs.iter().map(|d| d.ty().order()).max().unwrap_or(0)
    }

    /// Type-checks the program, verifying the scoping and application
    /// invariants of the kernel. Returns the map of function types.
    pub fn check(&self) -> Result<BTreeMap<FunName, SimpleTy>, String> {
        let mut sig = BTreeMap::new();
        for d in &self.defs {
            if sig.insert(d.name.clone(), d.ty()).is_some() {
                return Err(format!("duplicate definition of {}", d.name));
            }
        }
        if !sig.contains_key(&self.main) {
            return Err(format!("missing main function {}", self.main));
        }
        for d in &self.defs {
            let mut env: BTreeMap<Var, SimpleTy> = d.params.iter().cloned().collect();
            // `None` = the body certainly fails (bottom), compatible with
            // any declared result type.
            if let Some(t) = self.check_expr(&d.body, &mut env, &sig)? {
                if t != d.ret {
                    return Err(format!(
                        "body of {} has type {t}, declared {}",
                        d.name, d.ret
                    ));
                }
            }
        }
        Ok(sig)
    }

    fn value_ty(
        &self,
        v: &Value,
        env: &BTreeMap<Var, SimpleTy>,
        sig: &BTreeMap<FunName, SimpleTy>,
    ) -> Result<SimpleTy, String> {
        match v {
            Value::Const(c) => Ok(c.ty()),
            Value::Var(x) => env
                .get(x)
                .cloned()
                .ok_or_else(|| format!("unbound variable {x}")),
            Value::Fun(f) => sig
                .get(f)
                .cloned()
                .ok_or_else(|| format!("unbound function {f}")),
            Value::PApp(h, args) => {
                let mut t = self.value_ty(h, env, sig)?;
                for a in args {
                    let ta = self.value_ty(a, env, sig)?;
                    match t {
                        SimpleTy::Fun(p, r) => {
                            if *p != ta {
                                return Err(format!(
                                    "argument type mismatch: expected {p}, got {ta}"
                                ));
                            }
                            t = *r;
                        }
                        t => return Err(format!("over-application of value of type {t}")),
                    }
                }
                if t.is_base() {
                    return Err("partial application saturates to a base type".into());
                }
                Ok(t)
            }
        }
    }

    /// Types an expression; `Ok(None)` means the expression certainly
    /// reduces to `fail` (bottom — compatible with every type).
    fn check_expr(
        &self,
        e: &Expr,
        env: &mut BTreeMap<Var, SimpleTy>,
        sig: &BTreeMap<FunName, SimpleTy>,
    ) -> Result<Option<SimpleTy>, String> {
        match e {
            Expr::Value(v) => self.value_ty(v, env, sig).map(Some),
            Expr::Call(f, args) => {
                let mut t = self.value_ty(f, env, sig)?;
                for a in args {
                    let ta = self.value_ty(a, env, sig)?;
                    match t {
                        SimpleTy::Fun(p, r) => {
                            if *p != ta {
                                return Err(format!(
                                    "call argument mismatch: expected {p}, got {ta}"
                                ));
                            }
                            t = *r;
                        }
                        t => return Err(format!("calling non-function of type {t}")),
                    }
                }
                if !t.is_base() {
                    return Err(format!("call does not saturate: residual type {t}"));
                }
                Ok(Some(t))
            }
            Expr::Op(op, args) => {
                let want = op.arg_tys();
                if want.len() != args.len() {
                    return Err(format!("operator {op} arity mismatch"));
                }
                for (a, w) in args.iter().zip(&want) {
                    let ta = self.value_ty(a, env, sig)?;
                    if ta != *w {
                        return Err(format!("operator {op}: expected {w}, got {ta}"));
                    }
                }
                Ok(Some(op.result_ty()))
            }
            Expr::Rand => Ok(Some(SimpleTy::Int)),
            Expr::Let(x, rhs, body) => {
                let Some(t) = self.check_expr(rhs, env, sig)? else {
                    // The binding certainly fails: the body is dead code.
                    return Ok(None);
                };
                let shadowed = env.insert(x.clone(), t);
                let tb = self.check_expr(body, env, sig)?;
                match shadowed {
                    Some(s) => {
                        env.insert(x.clone(), s);
                    }
                    None => {
                        env.remove(x);
                    }
                }
                Ok(tb)
            }
            Expr::Choice(l, r) => {
                let tl = self.check_expr(l, env, sig)?;
                let tr = self.check_expr(r, env, sig)?;
                match (tl, tr) {
                    (Some(a), Some(b)) if a != b => {
                        Err(format!("choice branches disagree: {a} vs {b}"))
                    }
                    (Some(a), _) => Ok(Some(a)),
                    (None, t) => Ok(t),
                }
            }
            Expr::Assume(v, e) => {
                let tv = self.value_ty(v, env, sig)?;
                if tv != SimpleTy::Bool {
                    return Err(format!("assume on non-boolean {tv}"));
                }
                self.check_expr(e, env, sig)
            }
            Expr::Fail => Ok(None),
        }
    }

    /// `true` when the program is in the CPS normal form required by the
    /// back half of the pipeline: every body has type `unit`, every `let`
    /// right-hand side is an operator, `rand`, or a value, and every call is
    /// in tail position.
    pub fn is_cps_normal(&self) -> bool {
        fn tail_ok(e: &Expr) -> bool {
            match e {
                Expr::Value(Value::Const(Const::Unit)) | Expr::Fail => true,
                Expr::Call(_, _) => true,
                Expr::Value(_) | Expr::Op(_, _) | Expr::Rand => false,
                Expr::Let(_, rhs, body) => {
                    matches!(
                        rhs.as_ref(),
                        Expr::Op(_, _) | Expr::Rand | Expr::Value(_)
                    ) && tail_ok(body)
                }
                Expr::Choice(l, r) => tail_ok(l) && tail_ok(r),
                Expr::Assume(_, e) => tail_ok(e),
            }
        }
        self.defs
            .iter()
            .all(|d| d.ret == SimpleTy::Unit && tail_ok(&d.body))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Const(c) => write!(f, "{c}"),
            Value::Var(v) => write!(f, "{v}"),
            Value::Fun(n) => write!(f, "{n}"),
            Value::PApp(h, args) => {
                write!(f, "({h}")?;
                for a in args {
                    write!(f, " {a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_indented(f, 0)
    }
}

impl Expr {
    fn fmt_indented(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        let pad = "  ".repeat(indent);
        match self {
            Expr::Value(v) => write!(f, "{pad}{v}"),
            Expr::Call(h, args) => {
                write!(f, "{pad}{h}")?;
                for a in args {
                    write!(f, " {a}")?;
                }
                Ok(())
            }
            Expr::Op(op, args) => {
                write!(f, "{pad}{op}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Expr::Rand => write!(f, "{pad}rand_int"),
            Expr::Let(x, rhs, body) => {
                write!(f, "{pad}let {x} =")?;
                match rhs.as_ref() {
                    Expr::Value(_) | Expr::Op(_, _) | Expr::Rand => {
                        write!(f, " ")?;
                        rhs.fmt_indented(f, 0)?;
                    }
                    _ => {
                        writeln!(f)?;
                        rhs.fmt_indented(f, indent + 1)?;
                    }
                }
                writeln!(f, " in")?;
                body.fmt_indented(f, indent)
            }
            Expr::Choice(l, r) => {
                writeln!(f, "{pad}(")?;
                l.fmt_indented(f, indent + 1)?;
                writeln!(f)?;
                writeln!(f, "{pad}) [] (")?;
                r.fmt_indented(f, indent + 1)?;
                writeln!(f)?;
                write!(f, "{pad})")
            }
            Expr::Assume(v, e) => {
                writeln!(f, "{pad}assume {v};")?;
                e.fmt_indented(f, indent)
            }
            Expr::Fail => write!(f, "{pad}fail"),
        }
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.defs {
            write!(f, "{}", d.name)?;
            for (x, t) in &d.params {
                write!(f, " ({x}:{t})")?;
            }
            writeln!(f, " : {} =", d.ret)?;
            d.body.fmt_indented(f, 1)?;
            writeln!(f)?;
        }
        writeln!(f, "(* main: {} *)", self.main)
    }
}
