//! Elaboration: typed surface programs → kernel programs.
//!
//! This pass performs, in one sweep:
//!
//! * **α-renaming** — every binder gets a globally unique name;
//! * **λ-lifting** — local functions and `fun`-abstractions become top-level
//!   definitions, closing over their captured locals as extra parameters;
//! * **A-normalization** — operator and application arguments become values,
//!   with intermediate computations bound by `let`;
//! * **desugaring** per the paper's §2 — `if v then e₁ else e₂` becomes
//!   `(assume v; e₁) ⊓ (let x = ¬v in assume x; e₂)`, `assert v` becomes
//!   `if v then () else fail`, and `rand_bool` becomes `true ⊓ false`;
//! * **unknowns** — the program's free variables become parameters of `main`;
//! * **η-expansion** — definitions whose bodies have function type gain
//!   parameters until the body type is base (the paper's standing
//!   assumption, enabling the simple CPS transform).

use std::collections::BTreeMap;
use std::fmt;

use homc_smt::Var;

use crate::kernel::{Def, Expr, FunName, Op, Program, Value};
use crate::types::{SimpleTy, TExpr, Typed, TypedProgram};

/// An elaboration error (internal inconsistencies; well-typed inputs do not
/// produce these).
#[derive(Clone, Debug)]
pub struct ElabError(pub String);

impl fmt::Display for ElabError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "elaboration error: {}", self.0)
    }
}

impl std::error::Error for ElabError {}

/// Elaborates a typed surface program into a kernel [`Program`].
pub fn elaborate(tp: &TypedProgram) -> Result<Program, ElabError> {
    let mut ctx = Ctx::default();
    let mut env: Env = BTreeMap::new();
    // The program's unknowns are int parameters of main.
    let mut main_params = Vec::new();
    for u in &tp.unknowns {
        let v = ctx.fresh_var(u, SimpleTy::Int);
        env.insert(u.clone(), Value::Var(v.clone()));
        main_params.push((v, SimpleTy::Int));
    }
    if !tp.root.ty.is_base() {
        return Err(ElabError(format!(
            "the program's final expression has function type {}; it must be a base type",
            tp.root.ty
        )));
    }
    let body = ctx.elab_expr(&tp.root, &env)?;
    let main = FunName("main".to_string());
    ctx.defs.push(Def {
        name: main.clone(),
        params: main_params,
        ret: tp.root.ty.clone(),
        body,
    });
    let mut program = Program {
        defs: ctx.defs,
        main,
    };
    eta_expand(&mut program, &mut ctx.counter);
    Ok(program)
}

/// Surface identifiers resolve to kernel values (a local variable, a
/// top-level function, or a partial application closing over captures).
type Env = BTreeMap<String, Value>;

#[derive(Default)]
struct Ctx {
    defs: Vec<Def>,
    counter: usize,
    var_tys: BTreeMap<Var, SimpleTy>,
    fun_tys: BTreeMap<FunName, SimpleTy>,
}

impl Ctx {
    fn fresh_var(&mut self, base: &str, ty: SimpleTy) -> Var {
        self.counter += 1;
        let v = Var::new(format!("{base}_{}", self.counter));
        self.var_tys.insert(v.clone(), ty);
        v
    }

    fn fresh_fun(&mut self, base: &str) -> FunName {
        self.counter += 1;
        FunName(format!("{base}_{}", self.counter))
    }


    /// Elaborates `e` in value position: computations are bound in `binds`.
    fn elab_value(
        &mut self,
        e: &Typed,
        env: &Env,
        binds: &mut Vec<(Var, Expr)>,
    ) -> Result<Value, ElabError> {
        match &e.expr {
            TExpr::Unit => Ok(Value::unit()),
            TExpr::Bool(b) => Ok(Value::bool(*b)),
            TExpr::Int(n) => Ok(Value::int(*n)),
            TExpr::Var(x) => env
                .get(x)
                .cloned()
                .ok_or_else(|| ElabError(format!("unbound identifier {x}"))),
            TExpr::App(_, _) => {
                let (head, args) = spine(e);
                let hv = self.elab_value(head, env, binds)?;
                let mut avs = Vec::new();
                for a in &args {
                    avs.push(self.elab_value(a, env, binds)?);
                }
                if e.ty.is_base() {
                    // Saturated: a computation.
                    let t = self.fresh_var("r", e.ty.clone());
                    binds.push((t.clone(), Expr::Call(hv, avs)));
                    Ok(Value::Var(t))
                } else {
                    Ok(hv.papp(avs))
                }
            }
            TExpr::BinOp(op, a, b) => {
                let ta = a.ty.clone();
                let va = self.elab_value(a, env, binds)?;
                let vb = self.elab_value(b, env, binds)?;
                let kop = match op {
                    crate::ast::BinOp::Add => Op::Add,
                    crate::ast::BinOp::Sub => Op::Sub,
                    crate::ast::BinOp::Mul => Op::Mul,
                    crate::ast::BinOp::Div => Op::Div,
                    crate::ast::BinOp::Lt => Op::Lt,
                    crate::ast::BinOp::Le => Op::Le,
                    crate::ast::BinOp::Gt => Op::Gt,
                    crate::ast::BinOp::Ge => Op::Ge,
                    crate::ast::BinOp::And => Op::And,
                    crate::ast::BinOp::Or => Op::Or,
                    crate::ast::BinOp::Eq | crate::ast::BinOp::Ne => {
                        if ta == SimpleTy::Bool {
                            Op::EqBool
                        } else {
                            Op::EqInt
                        }
                    }
                };
                let t = self.fresh_var("t", kop.result_ty());
                binds.push((t.clone(), Expr::Op(kop, vec![va, vb])));
                if matches!(op, crate::ast::BinOp::Ne) {
                    let nt = self.fresh_var("t", SimpleTy::Bool);
                    binds.push((nt.clone(), Expr::Op(Op::Not, vec![Value::Var(t)])));
                    Ok(Value::Var(nt))
                } else {
                    Ok(Value::Var(t))
                }
            }
            TExpr::Neg(a) => {
                let va = self.elab_value(a, env, binds)?;
                let t = self.fresh_var("t", SimpleTy::Int);
                binds.push((t.clone(), Expr::Op(Op::Neg, vec![va])));
                Ok(Value::Var(t))
            }
            TExpr::Not(a) => {
                let va = self.elab_value(a, env, binds)?;
                let t = self.fresh_var("t", SimpleTy::Bool);
                binds.push((t.clone(), Expr::Op(Op::Not, vec![va])));
                Ok(Value::Var(t))
            }
            TExpr::Fun(_, _, _) => {
                // A bare lambda: lift it as an anonymous function.
                let name = self.fresh_fun("lam");
                self.lift_lambda(&name, e, env)
            }
            TExpr::Let { .. }
            | TExpr::If(_, _, _)
            | TExpr::Assert(_)
            | TExpr::Assume(_, _)
            | TExpr::Seq(_, _)
            | TExpr::Fail
            | TExpr::RandInt
            | TExpr::RandBool => {
                // A computation in value position: bind it.
                let ex = self.elab_expr(e, env)?;
                let t = self.fresh_var("v", e.ty.clone());
                binds.push((t.clone(), ex));
                Ok(Value::Var(t))
            }
        }
    }

    /// Elaborates `e` in tail (expression) position.
    fn elab_expr(&mut self, e: &Typed, env: &Env) -> Result<Expr, ElabError> {
        match &e.expr {
            TExpr::App(_, _) if e.ty.is_base() => {
                let (head, args) = spine(e);
                let mut binds = Vec::new();
                let hv = self.elab_value(head, env, &mut binds)?;
                let mut avs = Vec::new();
                for a in &args {
                    avs.push(self.elab_value(a, env, &mut binds)?);
                }
                Ok(wrap(binds, Expr::Call(hv, avs)))
            }
            TExpr::If(c, t, el) => {
                let mut binds = Vec::new();
                let vc = self.elab_value(c, env, &mut binds)?;
                let then_e = self.elab_expr(t, env)?;
                let else_e = self.elab_expr(el, env)?;
                Ok(wrap(binds, self.desugar_if(vc, then_e, else_e)))
            }
            TExpr::Assert(c) => {
                let mut binds = Vec::new();
                let vc = self.elab_value(c, env, &mut binds)?;
                Ok(wrap(
                    binds,
                    self.desugar_if(vc, Expr::Value(Value::unit()), Expr::Fail),
                ))
            }
            TExpr::Assume(c, body) => {
                let mut binds = Vec::new();
                let vc = self.elab_value(c, env, &mut binds)?;
                let be = self.elab_expr(body, env)?;
                Ok(wrap(binds, Expr::assume(vc, be)))
            }
            TExpr::Fail => Ok(Expr::Fail),
            TExpr::RandInt => Ok(Expr::Rand),
            TExpr::RandBool => Ok(Expr::choice(
                Expr::Value(Value::bool(true)),
                Expr::Value(Value::bool(false)),
            )),
            TExpr::Seq(a, b) => {
                let ea = self.elab_expr(a, env)?;
                let t = self.fresh_var("u", a.ty.clone());
                let eb = self.elab_expr(b, env)?;
                Ok(Expr::let_(t, ea, eb))
            }
            TExpr::Let {
                recursive,
                name,
                params,
                name_ty,
                rhs,
                body,
            } => {
                // Merge leading lambdas of the rhs into the parameter list.
                let mut params = params.clone();
                let mut rhs_ref: &Typed = rhs;
                while let TExpr::Fun(x, t, inner) = &rhs_ref.expr {
                    params.push((x.clone(), t.clone()));
                    rhs_ref = inner;
                }
                if params.is_empty() {
                    // A plain value binding.
                    if *recursive {
                        return Err(ElabError(format!(
                            "recursive value binding {name} is not supported"
                        )));
                    }
                    let er = self.elab_expr(rhs_ref, env)?;
                    let x = self.fresh_var(name, rhs_ref.ty.clone());
                    let mut inner = env.clone();
                    inner.insert(name.clone(), Value::Var(x.clone()));
                    let eb = self.elab_expr(body, &inner)?;
                    return Ok(Expr::let_(x, er, eb));
                }
                // A function definition: λ-lift it.
                let binding = self.lift_function(
                    name, *recursive, &params, name_ty, rhs_ref, env,
                )?;
                let mut inner = env.clone();
                inner.insert(name.clone(), binding);
                self.elab_expr(body, &inner)
            }
            // Values (and operator applications) in tail position.
            _ => {
                let mut binds = Vec::new();
                let v = self.elab_value(e, env, &mut binds)?;
                Ok(wrap(binds, Expr::Value(v)))
            }
        }
    }

    /// The paper's conditional desugaring (§2).
    fn desugar_if(&mut self, cond: Value, then_e: Expr, else_e: Expr) -> Expr {
        let nb = self.fresh_var("nb", SimpleTy::Bool);
        Expr::choice(
            Expr::assume(cond.clone(), then_e),
            Expr::let_(
                nb.clone(),
                Expr::Op(Op::Not, vec![cond]),
                Expr::assume(Value::Var(nb), else_e),
            ),
        )
    }

    /// Lifts `let [rec] name params = rhs` to a top-level definition,
    /// returning the value the name is bound to in the continuation.
    fn lift_function(
        &mut self,
        name: &str,
        recursive: bool,
        params: &[(String, SimpleTy)],
        name_ty: &SimpleTy,
        rhs: &Typed,
        env: &Env,
    ) -> Result<Value, ElabError> {
        self.lift_function_with_ghosts(name, recursive, params, name_ty, rhs, env, &[])
    }

    #[allow(clippy::too_many_arguments)]
    fn lift_function_with_ghosts(
        &mut self,
        name: &str,
        recursive: bool,
        params: &[(String, SimpleTy)],
        name_ty: &SimpleTy,
        rhs: &Typed,
        env: &Env,
        ghosts: &[Var],
    ) -> Result<Value, ElabError> {
        // Captured locals: kernel variables free in the values that the
        // rhs's free surface identifiers resolve to.
        let mut free = Vec::new();
        let mut bound: Vec<String> = params.iter().map(|(p, _)| p.clone()).collect();
        if recursive {
            bound.push(name.to_string());
        }
        free_idents(&rhs.expr, &mut bound, &mut free);
        let mut captured: Vec<Var> = Vec::new();
        for id in &free {
            if let Some(v) = env.get(id) {
                let mut vs = Vec::new();
                v.free_vars(&mut vs);
                for v in vs {
                    if !captured.contains(&v) {
                        captured.push(v);
                    }
                }
            }
        }
        for g in ghosts {
            if !captured.contains(g) {
                captured.push(g.clone());
            }
        }
        let fname = self.fresh_fun(name);
        // Fresh kernel parameters.
        let mut def_params: Vec<(Var, SimpleTy)> = Vec::new();
        for c in &captured {
            let ty = self
                .var_tys
                .get(c)
                .cloned()
                .ok_or_else(|| ElabError(format!("untyped captured variable {c}")))?;
            def_params.push((c.clone(), ty));
        }
        let mut inner = env.clone();
        for (p, t) in params {
            let v = self.fresh_var(p, t.clone());
            inner.insert(p.clone(), Value::Var(v.clone()));
            def_params.push((v, t.clone()));
        }
        let binding = if captured.is_empty() {
            Value::Fun(fname.clone())
        } else {
            Value::PApp(
                Box::new(Value::Fun(fname.clone())),
                captured.iter().cloned().map(Value::Var).collect(),
            )
        };
        if recursive {
            inner.insert(name.to_string(), binding.clone());
        }
        // Record the function's type (captures prepended) before
        // elaborating the body so recursive uses resolve.
        let full_ty = def_params
            .iter()
            .rev()
            .fold(rhs.ty.clone(), |acc, (_, t)| SimpleTy::fun(t.clone(), acc));
        self.fun_tys.insert(fname.clone(), full_ty);
        let _ = name_ty;
        let body = self.elab_expr(rhs, &inner)?;
        self.defs.push(Def {
            name: fname,
            params: def_params,
            ret: rhs.ty.clone(),
            body,
        });
        Ok(binding)
    }

    /// Lifts an anonymous `fun … -> e`, ghost-capturing every in-scope
    /// integer (so that CEGAR can express predicates relating the lambda's
    /// arguments to its environment — the paper's Remark 2 device).
    fn lift_lambda(&mut self, name: &FunName, e: &Typed, env: &Env) -> Result<Value, ElabError> {
        let mut params = Vec::new();
        let mut body: &Typed = e;
        while let TExpr::Fun(x, t, inner) = &body.expr {
            params.push((x.clone(), t.clone()));
            body = inner;
        }
        let base = name.0.clone();
        let ghosts: Vec<Var> = env
            .values()
            .filter_map(|v| match v {
                Value::Var(x) if self.var_tys.get(x) == Some(&SimpleTy::Int) => Some(x.clone()),
                _ => None,
            })
            .collect();
        self.lift_function_with_ghosts(&base, false, &params, &e.ty, body, env, &ghosts)
    }
}

/// Splits an application spine `(((f a) b) c)` into `(f, [a, b, c])`.
fn spine(e: &Typed) -> (&Typed, Vec<&Typed>) {
    match &e.expr {
        TExpr::App(f, a) => {
            let (head, mut args) = spine(f);
            args.push(a);
            (head, args)
        }
        _ => (e, Vec::new()),
    }
}

/// Free surface identifiers of a typed expression.
fn free_idents(e: &TExpr, bound: &mut Vec<String>, out: &mut Vec<String>) {
    let visit = |x: &str, bound: &Vec<String>, out: &mut Vec<String>| {
        if !bound.iter().any(|b| b == x) && !out.iter().any(|o| o == x) {
            out.push(x.to_string());
        }
    };
    match e {
        TExpr::Unit
        | TExpr::Bool(_)
        | TExpr::Int(_)
        | TExpr::Fail
        | TExpr::RandInt
        | TExpr::RandBool => {}
        TExpr::Var(x) => visit(x, bound, out),
        TExpr::BinOp(_, a, b) | TExpr::App(a, b) | TExpr::Seq(a, b) | TExpr::Assume(a, b) => {
            free_idents(&a.expr, bound, out);
            free_idents(&b.expr, bound, out);
        }
        TExpr::Neg(a) | TExpr::Not(a) | TExpr::Assert(a) => free_idents(&a.expr, bound, out),
        TExpr::If(c, t, e) => {
            free_idents(&c.expr, bound, out);
            free_idents(&t.expr, bound, out);
            free_idents(&e.expr, bound, out);
        }
        TExpr::Let {
            recursive,
            name,
            params,
            rhs,
            body,
            ..
        } => {
            let n = bound.len();
            for (p, _) in params {
                bound.push(p.clone());
            }
            if *recursive {
                bound.push(name.clone());
            }
            free_idents(&rhs.expr, bound, out);
            bound.truncate(n);
            bound.push(name.clone());
            free_idents(&body.expr, bound, out);
            bound.pop();
        }
        TExpr::Fun(x, _, body) => {
            bound.push(x.clone());
            free_idents(&body.expr, bound, out);
            bound.pop();
        }
    }
}

fn wrap(binds: Vec<(Var, Expr)>, tail: Expr) -> Expr {
    binds
        .into_iter()
        .rev()
        .fold(tail, |acc, (x, rhs)| Expr::let_(x, rhs, acc))
}

/// η-expands definitions whose result type is a function until every body
/// has base type (the paper's standing assumption before CPS).
fn eta_expand(program: &mut Program, counter: &mut usize) {
    for def in &mut program.defs {
        if def.ret.is_base() {
            continue;
        }
        // Add parameters for the whole residual type in one step so that the
        // final application saturates to a base type.
        let (ps, ret) = def.ret.uncurry();
        let (ps, ret): (Vec<SimpleTy>, SimpleTy) =
            (ps.into_iter().cloned().collect(), ret.clone());
        let mut args = Vec::new();
        for p in &ps {
            *counter += 1;
            let y = Var::new(format!("eta_{counter}"));
            args.push(Value::Var(y.clone()));
            def.params.push((y, p.clone()));
        }
        *counter += 1;
        let res = Var::new(format!("etar_{counter}"));
        let old = std::mem::replace(&mut def.body, Expr::Fail);
        def.body = Expr::let_(res.clone(), old, Expr::Call(Value::Var(res), args));
        def.ret = ret;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::types::infer;

    fn kernel_of(src: &str) -> Program {
        let tp = infer(&parse(src).expect("parses")).expect("types");
        let p = elaborate(&tp).expect("elaborates");
        p.check().expect("kernel type-checks");
        p
    }

    #[test]
    fn intro1_elaborates_and_checks() {
        let p = kernel_of(
            "let f x g = g (x + 1) in
             let h y = assert (y > 0) in
             let k n = if n > 0 then f n h else () in
             k rand_int",
        );
        // f, h, k, main (+ the rand binding stays inline).
        assert_eq!(p.defs.len(), 4);
        assert_eq!(p.main_def().params.len(), 0);
        assert_eq!(p.order(), 2);
    }

    #[test]
    fn free_variables_become_main_params() {
        let p = kernel_of("assert (n <= m)");
        assert_eq!(p.main_def().params.len(), 2);
    }

    #[test]
    fn lambda_lifting_captures_locals() {
        // g captures z.
        let p = kernel_of("let outer z = (fun y -> y + z) 3 in outer 7");
        let lam = p
            .defs
            .iter()
            .find(|d| d.name.0.starts_with("lam"))
            .expect("lifted lambda");
        assert_eq!(lam.params.len(), 2, "captured z plus the parameter y");
    }

    #[test]
    fn nested_function_captures() {
        let p = kernel_of(
            "let outer z =
               let g y = y + z in
               g 1 + g 2
             in outer 5",
        );
        let g = p
            .defs
            .iter()
            .find(|d| d.name.0.starts_with("g"))
            .expect("lifted g");
        assert_eq!(g.params.len(), 2);
    }

    #[test]
    fn recursive_function() {
        let p = kernel_of("let rec sum n = if n <= 0 then 0 else n + sum (n - 1) in sum 5");
        let sum = p
            .defs
            .iter()
            .find(|d| d.name.0.starts_with("sum"))
            .expect("sum");
        assert_eq!(sum.ret, SimpleTy::Int);
        assert_eq!(p.order(), 1);
    }

    #[test]
    fn eta_expansion_of_function_bodies() {
        // twice returns a closure; its definition must be η-expanded so the
        // body has base type.
        let p = kernel_of("let compose f g x = f (g x) in let inc x = x + 1 in compose inc inc 0");
        for d in &p.defs {
            assert!(d.ret.is_base(), "{} has non-base body", d.name);
        }
    }

    #[test]
    fn partial_application_is_a_value() {
        let p = kernel_of(
            "let h z y = assert (y > z) in
             let f x g = g (x + 1) in
             let k n = if n >= 0 then f n (h n) else () in
             k rand_int",
        );
        p.check().expect("types");
        assert_eq!(p.order(), 2);
    }
}
