//! A reference interpreter for kernel programs — the call-by-value
//! operational semantics of the paper's Figure 2, with the non-deterministic
//! choice reductions labelled `0`/`1` so executions can be matched against
//! model-checker counterexamples.

use std::collections::BTreeMap;
use std::fmt;

use homc_smt::Var;

use crate::kernel::{Const, Expr, FunName, Op, Program, Value};

/// A label recording which branch a `⊓` reduction took (paper §2).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Label {
    /// The left branch.
    Zero,
    /// The right branch.
    One,
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Label::Zero => write!(f, "0"),
            Label::One => write!(f, "1"),
        }
    }
}

/// Runtime values.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CVal {
    /// `()`.
    Unit,
    /// Boolean.
    Bool(bool),
    /// Integer.
    Int(i64),
    /// A (possibly partial) application of a top-level function.
    Closure(FunName, Vec<CVal>),
}

impl fmt::Display for CVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CVal::Unit => write!(f, "()"),
            CVal::Bool(b) => write!(f, "{b}"),
            CVal::Int(n) => write!(f, "{n}"),
            CVal::Closure(g, args) => {
                write!(f, "<{g}")?;
                for a in args {
                    write!(f, " {a}")?;
                }
                write!(f, ">")
            }
        }
    }
}

/// The result of a run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Outcome {
    /// Evaluation finished with a value.
    Value(CVal),
    /// `fail` was reached.
    Fail,
    /// An `assume` was violated (execution stops without failure).
    Stop,
    /// The fuel budget ran out.
    OutOfFuel,
}

impl Outcome {
    /// `true` iff the run reached `fail`.
    pub fn is_fail(&self) -> bool {
        matches!(self, Outcome::Fail)
    }
}

/// Supplies non-deterministic decisions to the interpreter.
pub trait Driver {
    /// Chooses a branch for `e₁ ⊓ e₂`.
    fn choose(&mut self) -> Label;
    /// Supplies an unknown integer (`rand_int` or a `main` parameter).
    fn rand_int(&mut self) -> i64;
}

/// Replays a fixed script of labels and integers; after the script is
/// exhausted it answers `Zero` / `0`.
#[derive(Clone, Debug, Default)]
pub struct ScriptDriver {
    labels: Vec<Label>,
    ints: Vec<i64>,
    label_pos: usize,
    int_pos: usize,
}

impl ScriptDriver {
    /// Creates a driver from label and integer scripts.
    pub fn new(labels: Vec<Label>, ints: Vec<i64>) -> ScriptDriver {
        ScriptDriver {
            labels,
            ints,
            label_pos: 0,
            int_pos: 0,
        }
    }
}

impl Driver for ScriptDriver {
    fn choose(&mut self) -> Label {
        let l = self.labels.get(self.label_pos).copied().unwrap_or(Label::Zero);
        self.label_pos += 1;
        l
    }

    fn rand_int(&mut self) -> i64 {
        let n = self.ints.get(self.int_pos).copied().unwrap_or(0);
        self.int_pos += 1;
        n
    }
}

/// Runs `main` with decisions from `driver` and at most `fuel` reduction
/// steps. Returns the outcome and the trace of `⊓` labels taken.
pub fn run(program: &Program, driver: &mut dyn Driver, fuel: u64) -> (Outcome, Vec<Label>) {
    let mut st = Interp {
        program,
        driver,
        fuel,
        trace: Vec::new(),
    };
    let main = program.main_def();
    let mut env = BTreeMap::new();
    let mut args = Vec::new();
    for (x, _) in &main.params {
        let v = CVal::Int(st.driver.rand_int());
        env.insert(x.clone(), v.clone());
        args.push(v);
    }
    let out = st.eval(env, &main.body);
    (out, st.trace)
}

struct Interp<'a> {
    program: &'a Program,
    driver: &'a mut dyn Driver,
    fuel: u64,
    trace: Vec<Label>,
}

impl<'a> Interp<'a> {
    fn value(&self, env: &BTreeMap<Var, CVal>, v: &Value) -> CVal {
        match v {
            Value::Const(Const::Unit) => CVal::Unit,
            Value::Const(Const::Bool(b)) => CVal::Bool(*b),
            Value::Const(Const::Int(n)) => CVal::Int(*n),
            Value::Var(x) => env
                .get(x)
                .cloned()
                .unwrap_or_else(|| panic!("unbound variable {x} at runtime")),
            Value::Fun(f) => CVal::Closure(f.clone(), Vec::new()),
            Value::PApp(h, args) => {
                let head = self.value(env, h);
                let mut extra: Vec<CVal> = args.iter().map(|a| self.value(env, a)).collect();
                match head {
                    CVal::Closure(f, mut prev) => {
                        prev.append(&mut extra);
                        CVal::Closure(f, prev)
                    }
                    other => panic!("application of non-closure {other}"),
                }
            }
        }
    }

    fn op(&self, op: Op, args: &[CVal]) -> CVal {
        let int = |v: &CVal| match v {
            CVal::Int(n) => *n,
            other => panic!("expected int, got {other}"),
        };
        let boolean = |v: &CVal| match v {
            CVal::Bool(b) => *b,
            other => panic!("expected bool, got {other}"),
        };
        match op {
            Op::Add => CVal::Int(int(&args[0]).wrapping_add(int(&args[1]))),
            Op::Sub => CVal::Int(int(&args[0]).wrapping_sub(int(&args[1]))),
            Op::Mul => CVal::Int(int(&args[0]).wrapping_mul(int(&args[1]))),
            Op::Div => {
                let d = int(&args[1]);
                CVal::Int(if d == 0 { 0 } else { int(&args[0]) / d })
            }
            Op::Neg => CVal::Int(int(&args[0]).wrapping_neg()),
            Op::Lt => CVal::Bool(int(&args[0]) < int(&args[1])),
            Op::Le => CVal::Bool(int(&args[0]) <= int(&args[1])),
            Op::Gt => CVal::Bool(int(&args[0]) > int(&args[1])),
            Op::Ge => CVal::Bool(int(&args[0]) >= int(&args[1])),
            Op::EqInt => CVal::Bool(int(&args[0]) == int(&args[1])),
            Op::EqBool => CVal::Bool(boolean(&args[0]) == boolean(&args[1])),
            Op::And => CVal::Bool(boolean(&args[0]) && boolean(&args[1])),
            Op::Or => CVal::Bool(boolean(&args[0]) || boolean(&args[1])),
            Op::Not => CVal::Bool(!boolean(&args[0])),
        }
    }

    /// Evaluates with a tail-call loop; only `let` right-hand sides recurse.
    fn eval(&mut self, mut env: BTreeMap<Var, CVal>, mut expr: &'a Expr) -> Outcome {
        loop {
            if self.fuel == 0 {
                return Outcome::OutOfFuel;
            }
            self.fuel -= 1;
            match expr {
                Expr::Value(v) => return Outcome::Value(self.value(&env, v)),
                Expr::Op(op, args) => {
                    let vals: Vec<CVal> = args.iter().map(|a| self.value(&env, a)).collect();
                    return Outcome::Value(self.op(*op, &vals));
                }
                Expr::Rand => return Outcome::Value(CVal::Int(self.driver.rand_int())),
                Expr::Fail => return Outcome::Fail,
                Expr::Assume(v, body) => match self.value(&env, v) {
                    CVal::Bool(true) => expr = body,
                    CVal::Bool(false) => return Outcome::Stop,
                    other => panic!("assume on non-boolean {other}"),
                },
                Expr::Choice(l, r) => {
                    let lab = self.driver.choose();
                    self.trace.push(lab);
                    expr = match lab {
                        Label::Zero => l,
                        Label::One => r,
                    };
                }
                Expr::Let(x, rhs, body) => {
                    match rhs.as_ref() {
                        // Cheap right-hand sides inline.
                        Expr::Value(v) => {
                            let cv = self.value(&env, v);
                            env.insert(x.clone(), cv);
                        }
                        Expr::Op(op, args) => {
                            let vals: Vec<CVal> =
                                args.iter().map(|a| self.value(&env, a)).collect();
                            let cv = self.op(*op, &vals);
                            env.insert(x.clone(), cv);
                        }
                        Expr::Rand => {
                            let cv = CVal::Int(self.driver.rand_int());
                            env.insert(x.clone(), cv);
                        }
                        rhs => match self.eval(env.clone(), rhs) {
                            Outcome::Value(cv) => {
                                env.insert(x.clone(), cv);
                            }
                            other => return other,
                        },
                    }
                    expr = body;
                }
                Expr::Call(f, args) => {
                    let head = self.value(&env, f);
                    let mut vals: Vec<CVal> = args.iter().map(|a| self.value(&env, a)).collect();
                    let CVal::Closure(fname, mut prev) = head else {
                        panic!("calling non-closure");
                    };
                    prev.append(&mut vals);
                    let program = self.program;
                    let def = program
                        .def(&fname)
                        .unwrap_or_else(|| panic!("undefined function {fname}"));
                    assert_eq!(
                        prev.len(),
                        def.params.len(),
                        "call to {fname} does not saturate"
                    );
                    let mut new_env = BTreeMap::new();
                    for ((x, _), v) in def.params.iter().zip(prev) {
                        new_env.insert(x.clone(), v);
                    }
                    env = new_env;
                    expr = &def.body;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elaborate::elaborate;
    use crate::parser::parse;
    use crate::types::infer;

    fn kernel_of(src: &str) -> Program {
        let tp = infer(&parse(src).expect("parses")).expect("types");
        let p = elaborate(&tp).expect("elaborates");
        p.check().expect("kernel type-checks");
        p
    }

    fn run_with(src: &str, ints: Vec<i64>, labels: Vec<Label>) -> Outcome {
        let p = kernel_of(src);
        let mut d = ScriptDriver::new(labels, ints);
        run(&p, &mut d, 100_000).0
    }

    #[test]
    fn arithmetic_runs() {
        let out = run_with("1 + 2 * 3", vec![], vec![]);
        assert_eq!(out, Outcome::Value(CVal::Int(7)));
    }

    #[test]
    fn assertion_failure_reaches_fail() {
        // assert (n > 0) with n = -5 fails along the else branch (label 1).
        let out = run_with("assert (n > 0)", vec![-5], vec![Label::One]);
        assert_eq!(out, Outcome::Fail);
    }

    #[test]
    fn assertion_success() {
        let out = run_with("assert (n > 0)", vec![5], vec![Label::Zero]);
        assert_eq!(out, Outcome::Value(CVal::Unit));
    }

    #[test]
    fn assume_false_stops_without_failure() {
        let out = run_with("assume (1 = 2); fail", vec![], vec![]);
        assert_eq!(out, Outcome::Stop);
    }

    #[test]
    fn recursion_with_fuel() {
        let out = run_with(
            "let rec sum n = if n <= 0 then 0 else n + sum (n - 1) in sum 10",
            vec![],
            // sum's `if` takes the else branch (label 1) ten times, then then.
            vec![Label::One; 10]
                .into_iter()
                .chain([Label::Zero])
                .collect(),
        );
        assert_eq!(out, Outcome::Value(CVal::Int(55)));
    }

    #[test]
    fn higher_order_call() {
        let out = run_with(
            "let f x g = g (x + 1) in
             let h y = y * 2 in
             f 20 h",
            vec![],
            vec![],
        );
        assert_eq!(out, Outcome::Value(CVal::Int(42)));
    }

    #[test]
    fn paper_m1_safe_for_positive_n() {
        // M1 from §1: safe for every n; check one positive instance.
        let src = "let f x g = g (x + 1) in
                   let h y = assert (y > 0) in
                   let k n = if n > 0 then f n h else () in
                   k m";
        // n = 3: if takes then (0), assert takes then (0).
        let out = run_with(src, vec![3], vec![Label::Zero, Label::Zero]);
        assert_eq!(out, Outcome::Value(CVal::Unit));
    }

    #[test]
    fn infinite_recursion_runs_out_of_fuel() {
        let out = run_with("let rec loop x = loop x in loop 0", vec![], vec![]);
        assert_eq!(out, Outcome::OutOfFuel);
    }

    #[test]
    fn cps_and_direct_agree_on_failure() {
        use crate::cps::cps_transform;
        let src = "let f x g = g (x + 1) in
                   let h y = assert (y > 0) in
                   let k n = if n > 0 then f n h else () in
                   k m";
        let p = kernel_of(src);
        let q = cps_transform(&p);
        q.check().expect("CPS checks");
        for n in [-3i64, 0, 1, 7] {
            for labs in [[Label::Zero, Label::Zero], [Label::Zero, Label::One],
                         [Label::One, Label::Zero], [Label::One, Label::One]] {
                let mut d1 = ScriptDriver::new(labs.to_vec(), vec![n]);
                let mut d2 = ScriptDriver::new(labs.to_vec(), vec![n]);
                let (o1, t1) = run(&p, &mut d1, 100_000);
                let (o2, t2) = run(&q, &mut d2, 100_000);
                assert_eq!(o1.is_fail(), o2.is_fail(), "n={n} labs={labs:?}");
                assert_eq!(t1, t2, "label traces must agree");
            }
        }
    }
}
