//! The scoped-span self-profiler: folds a wall-clock trace into
//! flamegraph-style stacks.
//!
//! The tracer and the profiler share one instrumentation point — the
//! existing trace events. Every timed event carries an *end* timestamp
//! (`ts`, µs since the tracer's origin) and a duration (`dur_us`), so it
//! denotes the interval `[ts - dur_us, ts]`. [`fold_trace`] reconstructs
//! the span hierarchy from interval containment:
//!
//! * `run_end` — the root frame of a run (named by the preceding
//!   `run_start`),
//! * `iter` — one CEGAR iteration,
//! * `span` — a pipeline phase (`abs` / `mc` / `feas` / `interp`),
//! * `abs_def` — one definition's abstraction (`def:<name>`),
//! * `smt` — one solver query.
//!
//! Intervals are sorted by start (ties: wider first) and nested with a
//! stack; a child is clipped to its parent's bounds, so the output
//! *telescopes by construction*: each frame's inclusive time is at least
//! the sum of its direct children's ([`Profile::check_telescoping`]
//! verifies this on the finished aggregate, and CI's `profile-smoke` stage
//! re-checks it via [`validate_folded`]).
//!
//! The folded output is one `frame;frame;frame <µs>` line per stack with
//! *exclusive* microseconds as the count — exactly what `flamegraph.pl`
//! consumes. Frame labels are sanitized (no `;`, no whitespace).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use homc_trace::{parse_json, JsonValue};

/// One reconstructed interval, before nesting.
struct Interval {
    start: u64,
    end: u64,
    label: String,
}

/// Aggregate times for one stack path (`;`-joined frame labels).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SpanAgg {
    /// Occurrences of this exact stack.
    pub count: u64,
    /// Inclusive microseconds (children included).
    pub incl_us: u64,
    /// Exclusive microseconds (inclusive minus direct children).
    pub excl_us: u64,
}

/// A folded profile: stack path → aggregate, in lexicographic path order
/// (a parent's path is a strict prefix of its children's, so parents sort
/// first).
#[derive(Clone, Debug, Default)]
pub struct Profile {
    /// Aggregates keyed by `;`-joined stack path.
    pub spans: BTreeMap<String, SpanAgg>,
    /// Lines that did not parse as JSON (tolerated, like `trace-report`).
    pub bad_lines: usize,
}

/// Replaces separator and whitespace characters so a label is a valid
/// folded-stack frame.
fn sanitize(label: &str) -> String {
    label
        .chars()
        .map(|c| if c == ';' || c.is_whitespace() { '_' } else { c })
        .collect()
}

fn num_u64(v: &JsonValue, key: &str) -> u64 {
    v.get(key)
        .and_then(JsonValue::as_num)
        .and_then(|n| u64::try_from(n).ok())
        .unwrap_or(0)
}

/// One run's events, folded independently (a suite trace holds many runs).
struct RunEvents {
    name: String,
    /// The root interval from `run_end`, when present.
    root: Option<Interval>,
    intervals: Vec<Interval>,
}

/// Folds raw JSONL trace text into a [`Profile`].
pub fn fold_trace(text: &str) -> Profile {
    let mut runs: Vec<RunEvents> = Vec::new();
    let mut bad_lines = 0usize;
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let Ok(v) = parse_json(line) else {
            bad_lines += 1;
            continue;
        };
        let ev = v.get("ev").and_then(JsonValue::as_str).unwrap_or("");
        if ev == "run_start" {
            runs.push(RunEvents {
                name: sanitize(v.get("name").and_then(JsonValue::as_str).unwrap_or("run")),
                root: None,
                intervals: Vec::new(),
            });
            continue;
        }
        let label = match ev {
            "run_end" => None,
            "iter" => Some("iter".to_string()),
            "span" => Some(sanitize(
                v.get("phase").and_then(JsonValue::as_str).unwrap_or("phase"),
            )),
            "abs_def" => Some(format!(
                "def:{}",
                sanitize(v.get("def").and_then(JsonValue::as_str).unwrap_or("?"))
            )),
            "smt" => Some("smt".to_string()),
            // Untimed events (mc_round, interp_cut, fault, verdict, …).
            _ => continue,
        };
        if runs.is_empty() {
            runs.push(RunEvents {
                name: "trace".to_string(),
                root: None,
                intervals: Vec::new(),
            });
        }
        let run = runs.last_mut().expect("non-empty");
        let ts = num_u64(&v, "ts");
        let dur = num_u64(&v, "dur_us");
        let iv = Interval {
            start: ts.saturating_sub(dur),
            end: ts,
            label: label.clone().unwrap_or_default(),
        };
        match label {
            None => run.root = Some(iv),
            Some(_) => run.intervals.push(iv),
        }
    }

    let mut profile = Profile {
        spans: BTreeMap::new(),
        bad_lines,
    };
    for run in runs {
        fold_run(run, &mut profile.spans);
    }
    // Exclusive = inclusive − Σ direct children inclusive. Clipping during
    // nesting makes the subtraction non-negative, but saturate anyway.
    let child_sums: BTreeMap<String, u64> = {
        let mut sums: BTreeMap<String, u64> = BTreeMap::new();
        for (path, agg) in &profile.spans {
            if let Some(cut) = path.rfind(';') {
                *sums.entry(path[..cut].to_string()).or_insert(0) += agg.incl_us;
            }
        }
        sums
    };
    for (path, agg) in &mut profile.spans {
        let children = child_sums.get(path).copied().unwrap_or(0);
        agg.excl_us = agg.incl_us.saturating_sub(children);
    }
    profile
}

/// Nests one run's intervals by containment and merges them into `spans`.
fn fold_run(mut run: RunEvents, spans: &mut BTreeMap<String, SpanAgg>) {
    // Root: the run_end interval, or the hull of everything observed.
    let root = run.root.unwrap_or_else(|| Interval {
        start: run.intervals.iter().map(|i| i.start).min().unwrap_or(0),
        end: run.intervals.iter().map(|i| i.end).max().unwrap_or(0),
        label: String::new(),
    });
    // Sort: earlier start first; on ties the wider interval is the parent.
    // The sort is stable, so equal intervals keep emission order.
    run.intervals
        .sort_by(|a, b| a.start.cmp(&b.start).then(b.end.cmp(&a.end)));

    // Stack of (path, clipped end).
    let mut stack: Vec<(String, u64)> = vec![(run.name.clone(), root.end)];
    record(spans, &run.name, root.end.saturating_sub(root.start));
    for iv in &run.intervals {
        // Clip to the root so stray events cannot escape the run frame.
        let start = iv.start.clamp(root.start, root.end);
        let mut end = iv.end.clamp(root.start, root.end);
        while stack.len() > 1 && start >= stack.last().expect("non-empty").1 {
            stack.pop();
        }
        let (parent_path, parent_end) = stack.last().expect("root stays");
        end = end.min(*parent_end);
        let end = end.max(start);
        let path = format!("{parent_path};{}", iv.label);
        record(spans, &path, end - start);
        stack.push((path, end));
    }
}

fn record(spans: &mut BTreeMap<String, SpanAgg>, path: &str, dur: u64) {
    let agg = spans.entry(path.to_string()).or_default();
    agg.count += 1;
    agg.incl_us += dur;
}

impl Profile {
    /// The folded-stack rendering: one `path count` line per stack, count =
    /// exclusive microseconds, zero-time leaf stacks omitted (flamegraph.pl
    /// ignores them anyway). Deterministic: lexicographic path order.
    pub fn folded(&self) -> String {
        let mut out = String::new();
        for (path, agg) in &self.spans {
            if agg.excl_us > 0 {
                let _ = writeln!(out, "{path} {}", agg.excl_us);
            }
        }
        out
    }

    /// A human-readable tree: indentation from stack depth, inclusive and
    /// exclusive milliseconds, occurrence counts.
    pub fn render_tree(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>10} {:>10} {:>7}  span",
            "incl_ms", "excl_ms", "count"
        );
        for (path, agg) in &self.spans {
            let depth = path.matches(';').count();
            let label = path.rsplit(';').next().unwrap_or(path);
            let _ = writeln!(
                out,
                "{:>10.1} {:>10.1} {:>7}  {}{}",
                agg.incl_us as f64 / 1000.0,
                agg.excl_us as f64 / 1000.0,
                agg.count,
                "  ".repeat(depth),
                label,
            );
        }
        out
    }

    /// Verifies the telescoping invariant on the aggregate: for every span,
    /// the sum of its direct children's inclusive time must not exceed its
    /// own. Returns the first violation.
    pub fn check_telescoping(&self) -> Result<(), String> {
        let mut child_sums: BTreeMap<&str, u64> = BTreeMap::new();
        for (path, agg) in &self.spans {
            if let Some(cut) = path.rfind(';') {
                *child_sums.entry(&path[..cut]).or_insert(0) += agg.incl_us;
            }
        }
        for (path, sum) in child_sums {
            let parent = self
                .spans
                .get(path)
                .ok_or_else(|| format!("span {path:?} has children but no aggregate"))?;
            if sum > parent.incl_us {
                return Err(format!(
                    "telescoping violated at {path:?}: children {sum}µs > parent {}µs",
                    parent.incl_us
                ));
            }
        }
        Ok(())
    }
}

/// Validates folded-stack text (the `profile-smoke` CI check): every line
/// must be `frame(;frame)* <u64>` with non-empty frames and no stray
/// whitespace. Returns the number of stacks.
pub fn validate_folded(text: &str) -> Result<usize, String> {
    let mut n = 0usize;
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        let Some((stack, count)) = line.rsplit_once(' ') else {
            return Err(format!("line {lineno}: missing count separator"));
        };
        if count.parse::<u64>().is_err() {
            return Err(format!("line {lineno}: count {count:?} is not a u64"));
        }
        if stack.is_empty() {
            return Err(format!("line {lineno}: empty stack"));
        }
        for frame in stack.split(';') {
            if frame.is_empty() {
                return Err(format!("line {lineno}: empty frame in {stack:?}"));
            }
            if frame.chars().any(|c| c.is_whitespace()) {
                return Err(format!("line {lineno}: whitespace inside frame {frame:?}"));
            }
        }
        n += 1;
    }
    if n == 0 {
        return Err("no stacks".to_string());
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature wall-clock trace: one run, one iteration, two phases,
    /// one solver call inside `abs`, one abstracted definition.
    fn sample_trace() -> &'static str {
        concat!(
            "{\"ts\":0,\"ev\":\"run_start\",\"name\":\"p one\",\"clock\":\"wall\"}\n",
            "{\"ts\":300,\"ev\":\"smt\",\"key\":\"aa\",\"size\":3,\"result\":\"unsat\",\"dur_us\":100,\"q\":\"(x>0)\"}\n",
            "{\"ts\":400,\"ev\":\"abs_def\",\"def\":\"f g\",\"queries\":1,\"dur_us\":350}\n",
            "{\"ts\":500,\"ev\":\"span\",\"phase\":\"abs\",\"iter\":0,\"dur_us\":450}\n",
            "{\"ts\":900,\"ev\":\"span\",\"phase\":\"mc\",\"iter\":0,\"dur_us\":380}\n",
            "{\"ts\":1000,\"ev\":\"iter\",\"iter\":0,\"outcome\":\"safe\",\"dur_us\":970}\n",
            "{\"ts\":1100,\"ev\":\"run_end\",\"dur_us\":1100}\n",
        )
    }

    #[test]
    fn nests_by_containment_and_telescopes() {
        let p = fold_trace(sample_trace());
        assert_eq!(p.bad_lines, 0);
        let incl = |path: &str| p.spans.get(path).map(|a| a.incl_us);
        assert_eq!(incl("p_one"), Some(1100));
        assert_eq!(incl("p_one;iter"), Some(970));
        assert_eq!(incl("p_one;iter;abs"), Some(450));
        assert_eq!(incl("p_one;iter;abs;def:f_g"), Some(350));
        assert_eq!(incl("p_one;iter;abs;def:f_g;smt"), Some(100));
        assert_eq!(incl("p_one;iter;mc"), Some(380));
        p.check_telescoping().expect("telescopes");
        // Exclusive: abs = 450 − def(350); iter = 970 − abs − mc.
        assert_eq!(p.spans["p_one;iter;abs"].excl_us, 100);
        assert_eq!(p.spans["p_one;iter"].excl_us, 970 - 450 - 380);
    }

    #[test]
    fn clips_overhanging_children() {
        // A child whose measured end overhangs its parent by jitter is
        // clipped, not promoted to a sibling.
        let trace = concat!(
            "{\"ts\":0,\"ev\":\"run_start\",\"name\":\"p\",\"clock\":\"wall\"}\n",
            "{\"ts\":205,\"ev\":\"smt\",\"key\":\"aa\",\"size\":1,\"result\":\"sat\",\"dur_us\":150,\"q\":\"\"}\n",
            "{\"ts\":200,\"ev\":\"span\",\"phase\":\"abs\",\"iter\":0,\"dur_us\":180}\n",
            "{\"ts\":400,\"ev\":\"run_end\",\"dur_us\":400}\n",
        );
        let p = fold_trace(trace);
        p.check_telescoping().expect("telescopes after clipping");
        assert_eq!(p.spans["p;abs;smt"].incl_us, 145); // [55,205] ∩ [20,200]
    }

    #[test]
    fn folded_output_is_wellformed_and_deterministic() {
        let p = fold_trace(sample_trace());
        let folded = p.folded();
        let n = validate_folded(&folded).expect("well-formed");
        assert!(n >= 4, "{folded}");
        assert_eq!(folded, fold_trace(sample_trace()).folded());
        // Counts are exclusive µs: the leaf solver call appears verbatim.
        assert!(folded.contains("p_one;iter;abs;def:f_g;smt 100"), "{folded}");
    }

    #[test]
    fn validate_folded_rejects_malformed() {
        assert!(validate_folded("").is_err());
        assert!(validate_folded("noseparator\n").is_err());
        assert!(validate_folded("a;b notanumber\n").is_err());
        assert!(validate_folded("a;;b 3\n").is_err());
        assert!(validate_folded("a 12\n").is_ok());
    }

    #[test]
    fn multiple_runs_get_separate_roots() {
        let trace = concat!(
            "{\"ts\":0,\"ev\":\"run_start\",\"name\":\"a\",\"clock\":\"wall\"}\n",
            "{\"ts\":10,\"ev\":\"span\",\"phase\":\"abs\",\"iter\":0,\"dur_us\":8}\n",
            "{\"ts\":20,\"ev\":\"run_end\",\"dur_us\":20}\n",
            "{\"ts\":30,\"ev\":\"run_start\",\"name\":\"b\",\"clock\":\"wall\"}\n",
            "{\"ts\":40,\"ev\":\"span\",\"phase\":\"mc\",\"iter\":0,\"dur_us\":5}\n",
            "{\"ts\":50,\"ev\":\"run_end\",\"dur_us\":20}\n",
        );
        let p = fold_trace(trace);
        assert!(p.spans.contains_key("a;abs"));
        assert!(p.spans.contains_key("b;mc"));
        assert!(!p.spans.contains_key("a;mc"));
        p.check_telescoping().expect("telescopes");
    }
}
