//! Run-comparison engines behind `homc trace-diff` and `homc bench-diff`.
//!
//! Both tools share one model: each side is distilled into *per-program
//! metric maps* (`name → f64`), the maps are diffed key-by-key, and three
//! severities fall out of the comparison, encoded in the exit code:
//!
//! | exit | meaning                                        |
//! |------|------------------------------------------------|
//! | 0    | no differences beyond thresholds               |
//! | 1    | a metric regressed past its threshold          |
//! | 2    | a verdict flipped (hard error, beats 1)        |
//! | 3    | inputs are incompatible / unreadable (beats 2) |
//!
//! A threshold `name=ratio[:slack]` flags a metric when
//! `new > old * ratio + slack` — only *increases* gate, shrinkage is
//! reported but never fails. Lookup tries the qualified
//! `<program>.<metric>` name first, then the bare metric name, so
//! `--threshold total_s=2.0` covers every program while
//! `--threshold totals.wall_s=1.25` pins the suite aggregate.
//!
//! `trace-diff` summarizes JSONL traces: counters summed from `iter`
//! records plus event counts, and histogram summaries (p50/p90/max per
//! [`crate::Hist`] vocabulary) rebuilt from the `smt`, `interp_cut`,
//! `mc_round`, and `iter` events. `bench-diff` compares two table1
//! `--json` baselines and first checks their `meta` headers (schema,
//! suite, clock) — mismatches refuse to diff rather than produce noise.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use homc_trace::{parse_json, JsonValue};

use crate::HistSnapshot;

/// One gate rule: flag a metric when `new > old * ratio + slack`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Threshold {
    /// Multiplicative allowance on the old value.
    pub ratio: f64,
    /// Absolute allowance on top (absorbs jitter near zero).
    pub slack: f64,
}

/// Options shared by both diff tools.
#[derive(Clone, Debug, Default)]
pub struct DiffOptions {
    /// `(metric name, rule)` pairs; later entries win on name collisions.
    pub thresholds: Vec<(String, Threshold)>,
    /// Apply the built-in bench gate rules (tier1's regression guard).
    pub gate: bool,
}

/// Parses a `--threshold` argument: `name=ratio` or `name=ratio:slack`.
pub fn parse_threshold(s: &str) -> Result<(String, Threshold), String> {
    let (name, rest) = s
        .split_once('=')
        .ok_or_else(|| format!("threshold {s:?}: expected name=ratio[:slack]"))?;
    if name.is_empty() {
        return Err(format!("threshold {s:?}: empty metric name"));
    }
    let (ratio_s, slack_s) = match rest.split_once(':') {
        Some((r, sl)) => (r, Some(sl)),
        None => (rest, None),
    };
    let ratio: f64 = ratio_s
        .parse()
        .map_err(|_| format!("threshold {s:?}: bad ratio {ratio_s:?}"))?;
    if !ratio.is_finite() || ratio < 1.0 {
        return Err(format!("threshold {s:?}: ratio must be >= 1.0"));
    }
    let slack: f64 = match slack_s {
        Some(sl) => sl
            .parse()
            .map_err(|_| format!("threshold {s:?}: bad slack {sl:?}"))?,
        None => 0.0,
    };
    if !slack.is_finite() || slack < 0.0 {
        return Err(format!("threshold {s:?}: slack must be >= 0"));
    }
    Ok((name.to_string(), Threshold { ratio, slack }))
}

/// The built-in `--gate` rules (the tier1 bench guard): suite wall time
/// within 1.25x (+0.2 s jitter), per-program total time within 2x (+0.1 s),
/// per-program SMT query count within 1.5x (+200 queries).
fn gate_defaults() -> Vec<(String, Threshold)> {
    vec![
        (
            "totals.wall_s".to_string(),
            Threshold { ratio: 1.25, slack: 0.2 },
        ),
        ("total_s".to_string(), Threshold { ratio: 2.0, slack: 0.1 }),
        (
            "smt_queries".to_string(),
            Threshold { ratio: 1.5, slack: 200.0 },
        ),
    ]
}

/// The outcome of a diff: rendered report plus severity tallies.
#[derive(Clone, Debug, Default)]
pub struct DiffReport {
    /// The human-readable report (empty-diff runs render one line).
    pub text: String,
    /// Metrics that differ at all (informational).
    pub changes: usize,
    /// Metrics past a threshold, plus structural mismatches.
    pub breaches: usize,
    /// Verdict flips.
    pub flips: usize,
    /// Set when the inputs must not be compared (meta mismatch, clock
    /// mismatch, unparseable input).
    pub incompatible: Option<String>,
}

impl DiffReport {
    /// The process exit code for this report (see the module table).
    pub fn exit_code(&self) -> u8 {
        if self.incompatible.is_some() {
            3
        } else if self.flips > 0 {
            2
        } else if self.breaches > 0 {
            1
        } else {
            0
        }
    }
}

/// One side's distilled program: verdict plus flat metrics.
#[derive(Clone, Debug, Default)]
struct ProgramSummary {
    verdict: String,
    clock: String,
    metrics: BTreeMap<String, f64>,
}

fn text_of<'v>(v: &'v JsonValue, key: &str) -> &'v str {
    v.get(key).and_then(JsonValue::as_str).unwrap_or("")
}

fn f64_of(v: &JsonValue, key: &str) -> f64 {
    v.get(key).and_then(JsonValue::as_f64).unwrap_or(0.0)
}

fn u64_of(v: &JsonValue, key: &str) -> u64 {
    v.get(key)
        .and_then(JsonValue::as_num)
        .and_then(|n| u64::try_from(n).ok())
        .unwrap_or(0)
}

/// Flattens a histogram into `p50`/`p90`/`max` summary metrics (skipped
/// entirely when empty so absent instrumentation does not read as zeros).
fn hist_metrics(metrics: &mut BTreeMap<String, f64>, name: &str, h: &HistSnapshot) {
    if h.count == 0 {
        return;
    }
    metrics.insert(format!("{name}.p50"), h.quantile_bound(0.50) as f64);
    metrics.insert(format!("{name}.p90"), h.quantile_bound(0.90) as f64);
    metrics.insert(format!("{name}.max"), h.max as f64);
}

/// Summarizes a JSONL trace into per-run metric maps. Counters are summed
/// across `iter` records; histograms are rebuilt from the raw events using
/// the [`crate::Hist`] vocabulary.
fn summarize_trace(trace: &str) -> Result<BTreeMap<String, ProgramSummary>, String> {
    let mut runs: BTreeMap<String, ProgramSummary> = BTreeMap::new();
    let mut current: Option<String> = None;
    let mut hists: BTreeMap<String, BTreeMap<&'static str, HistSnapshot>> = BTreeMap::new();
    let mut bad = 0usize;
    for line in trace.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let Ok(v) = parse_json(line) else {
            bad += 1;
            continue;
        };
        let ev = text_of(&v, "ev");
        if ev == "run_start" {
            let name = text_of(&v, "name").to_string();
            let summary = runs.entry(name.clone()).or_default();
            summary.clock = text_of(&v, "clock").to_string();
            current = Some(name);
            continue;
        }
        let name = current.clone().unwrap_or_else(|| "<trace>".to_string());
        let run = runs.entry(name.clone()).or_default();
        let hs = hists.entry(name).or_default();
        fn add(m: &mut BTreeMap<String, f64>, key: &str, delta: f64) {
            *m.entry(key.to_string()).or_insert(0.0) += delta;
        }
        match ev {
            "iter" => {
                add(&mut run.metrics, "iters", 1.0);
                for key in [
                    "typings",
                    "pops",
                    "rescans",
                    "new_interp",
                    "new_seeded",
                    "smt_queries",
                    "cache_hits",
                    "cache_misses",
                    "fuel",
                    "cuts_sliced",
                    "cert_reuse_hits",
                ] {
                    add(&mut run.metrics, key, f64_of(&v, key));
                }
                let peak = run.metrics.entry("peak_bytes".to_string()).or_insert(0.0);
                *peak = peak.max(f64_of(&v, "peak_bytes"));
                hs.entry("hbp_rules").or_default().observe(u64_of(&v, "hbp_rules"));
                hs.entry("hbp_terms").or_default().observe(u64_of(&v, "hbp_terms"));
            }
            "smt" => {
                add(&mut run.metrics, "smt_solves", 1.0);
                hs.entry("smt_solve_us").or_default().observe(u64_of(&v, "dur_us"));
            }
            "interp_cut" => {
                add(&mut run.metrics, "interp_cuts", 1.0);
                hs.entry("interp_size").or_default().observe(u64_of(&v, "size"));
            }
            "mc_round" => {
                add(&mut run.metrics, "mc_rounds", 1.0);
                hs.entry("worklist_depth").or_default().observe(u64_of(&v, "dirty"));
            }
            "abs_def" => add(&mut run.metrics, "abs_defs", 1.0),
            "fault" => add(&mut run.metrics, "faults", 1.0),
            "verdict" => {
                run.verdict = text_of(&v, "verdict").to_string();
                add(&mut run.metrics, "cycles", f64_of(&v, "cycles"));
            }
            _ => {}
        }
    }
    if bad > 0 && runs.is_empty() {
        return Err(format!("{bad} unparseable line(s) and no events"));
    }
    for (name, hs) in hists {
        let run = runs.get_mut(&name).expect("run exists for its hists");
        for (hname, h) in hs {
            hist_metrics(&mut run.metrics, hname, &h);
        }
    }
    // A run with peak_bytes 0 never had the allocator installed: drop the
    // zero so it does not read as "0 bytes" against an instrumented run.
    for run in runs.values_mut() {
        if run.metrics.get("peak_bytes") == Some(&0.0) {
            run.metrics.remove("peak_bytes");
        }
    }
    Ok(runs)
}

/// Formats a metric value: integers without decoration, fractions at 4
/// decimal places (matching the bench baseline's own precision).
fn fmt_val(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.4}")
    }
}

/// Looks up the rule for `prog.metric`: qualified name first, then bare.
fn rule_for<'t>(
    thresholds: &'t [(String, Threshold)],
    prog: &str,
    metric: &str,
) -> Option<&'t Threshold> {
    let qualified = format!("{prog}.{metric}");
    // Later entries win: user-supplied rules are pushed after defaults.
    thresholds
        .iter()
        .rev()
        .find(|(n, _)| *n == qualified)
        .or_else(|| thresholds.iter().rev().find(|(n, _)| *n == metric))
        .map(|(_, t)| t)
}

/// Diffs one program's metric maps, appending report lines.
fn diff_metrics(
    report: &mut DiffReport,
    thresholds: &[(String, Threshold)],
    prog: &str,
    old: &BTreeMap<String, f64>,
    new: &BTreeMap<String, f64>,
) {
    let keys: std::collections::BTreeSet<&String> = old.keys().chain(new.keys()).collect();
    for key in keys {
        let o = old.get(key).copied().unwrap_or(0.0);
        let n = new.get(key).copied().unwrap_or(0.0);
        if (o - n).abs() < 1e-9 {
            continue;
        }
        report.changes += 1;
        let rule = rule_for(thresholds, prog, key);
        let breached = rule.is_some_and(|t| n > o * t.ratio + t.slack);
        let marker = if breached {
            report.breaches += 1;
            "  ** OVER THRESHOLD **"
        } else {
            ""
        };
        let pct = if o.abs() > 1e-9 {
            format!(" ({:+.1}%)", (n - o) / o * 100.0)
        } else {
            String::new()
        };
        let _ = writeln!(
            report.text,
            "  {prog} {key}: {} -> {}{pct}{marker}",
            fmt_val(o),
            fmt_val(n),
        );
    }
}

/// Diffs two sets of per-program summaries (the shared core of both tools).
fn diff_programs(
    report: &mut DiffReport,
    thresholds: &[(String, Threshold)],
    old: &BTreeMap<String, ProgramSummary>,
    new: &BTreeMap<String, ProgramSummary>,
) {
    let names: std::collections::BTreeSet<&String> = old.keys().chain(new.keys()).collect();
    for name in names {
        match (old.get(name), new.get(name)) {
            (Some(_), None) => {
                report.breaches += 1;
                report.changes += 1;
                let _ = writeln!(report.text, "  {name}: only in old run");
            }
            (None, Some(_)) => {
                report.breaches += 1;
                report.changes += 1;
                let _ = writeln!(report.text, "  {name}: only in new run");
            }
            (Some(o), Some(n)) => {
                if o.verdict != n.verdict {
                    report.flips += 1;
                    report.changes += 1;
                    let _ = writeln!(
                        report.text,
                        "  {name}: VERDICT FLIP {} -> {}",
                        if o.verdict.is_empty() { "<none>" } else { &o.verdict },
                        if n.verdict.is_empty() { "<none>" } else { &n.verdict },
                    );
                }
                diff_metrics(report, thresholds, name, &o.metrics, &n.metrics);
            }
            (None, None) => unreachable!("name came from a key set"),
        }
    }
}

fn finish(mut report: DiffReport, what: &str) -> DiffReport {
    if report.changes == 0 && report.incompatible.is_none() {
        let _ = writeln!(report.text, "{what}: no differences");
    } else if report.incompatible.is_none() {
        let _ = writeln!(
            report.text,
            "{what}: {} change(s), {} over threshold, {} verdict flip(s)",
            report.changes, report.breaches, report.flips
        );
    }
    report
}

/// Diffs two JSONL traces (`homc trace-diff`). Both sides must use the
/// same clock per run — wall durations against logical zeros would read as
/// a total collapse.
pub fn trace_diff(old: &str, new: &str, opts: &DiffOptions) -> DiffReport {
    let mut report = DiffReport::default();
    let (old_runs, new_runs) = match (summarize_trace(old), summarize_trace(new)) {
        (Ok(o), Ok(n)) => (o, n),
        (Err(e), _) => {
            report.incompatible = Some(format!("old trace: {e}"));
            return report;
        }
        (_, Err(e)) => {
            report.incompatible = Some(format!("new trace: {e}"));
            return report;
        }
    };
    for (name, o) in &old_runs {
        if let Some(n) = new_runs.get(name) {
            if o.clock != n.clock {
                report.incompatible = Some(format!(
                    "run {name:?}: clock mismatch ({:?} vs {:?})",
                    o.clock, n.clock
                ));
                return report;
            }
        }
    }
    let mut thresholds = Vec::new();
    if opts.gate {
        thresholds.extend(gate_defaults());
    }
    thresholds.extend(opts.thresholds.iter().cloned());
    diff_programs(&mut report, &thresholds, &old_runs, &new_runs);
    finish(report, "trace-diff")
}

/// Reads the bench baseline's `meta` header into sorted `(key, value)`
/// pairs (numbers and strings only).
fn meta_fields(doc: &JsonValue) -> Option<Vec<(String, String)>> {
    let meta = doc.get("meta")?;
    let fields = meta.as_obj()?;
    let mut out: Vec<(String, String)> = fields
        .iter()
        .filter_map(|(k, v)| {
            let rendered = v
                .as_str()
                .map(str::to_string)
                .or_else(|| v.as_num().map(|n| n.to_string()))?;
            Some((k.clone(), rendered))
        })
        .collect();
    out.sort();
    Some(out)
}

/// Summarizes a table1 `--json` baseline: per-program numeric columns plus
/// a synthetic `totals` program.
fn summarize_bench(doc: &JsonValue) -> Result<BTreeMap<String, ProgramSummary>, String> {
    let mut out = BTreeMap::new();
    let programs = doc
        .get("programs")
        .and_then(|p| match p {
            JsonValue::Arr(items) => Some(items.as_slice()),
            _ => None,
        })
        .ok_or("missing \"programs\" array")?;
    for p in programs {
        let name = text_of(p, "name");
        if name.is_empty() {
            return Err("program row without a name".to_string());
        }
        let mut summary = ProgramSummary {
            verdict: text_of(p, "verdict").to_string(),
            ..ProgramSummary::default()
        };
        for (k, v) in p.as_obj().unwrap_or(&[]) {
            if let Some(f) = v.as_f64() {
                summary.metrics.insert(k.clone(), f);
            } else if let JsonValue::Bool(b) = v {
                // verdict_ok rides along as 0/1 so flips show in the diff.
                summary.metrics.insert(k.clone(), if *b { 1.0 } else { 0.0 });
            }
        }
        out.insert(name.to_string(), summary);
    }
    if let Some(totals) = doc.get("totals") {
        let mut summary = ProgramSummary::default();
        for (k, v) in totals.as_obj().unwrap_or(&[]) {
            if let Some(f) = v.as_f64() {
                summary.metrics.insert(k.clone(), f);
            }
        }
        out.insert("totals".to_string(), summary);
    }
    Ok(out)
}

/// Keys on which a `meta` disagreement makes two baselines incomparable
/// (`threads` differences are reported but tolerated: the suite is
/// verdict-deterministic across thread counts).
const META_STRICT: &[&str] = &["schema", "suite", "clock"];

/// Diffs two table1 `--json` baselines (`homc bench-diff`).
pub fn bench_diff(old: &str, new: &str, opts: &DiffOptions) -> DiffReport {
    let mut report = DiffReport::default();
    let old_doc = match parse_json(old.trim()) {
        Ok(d) => d,
        Err(e) => {
            report.incompatible = Some(format!("old baseline: {e}"));
            return report;
        }
    };
    let new_doc = match parse_json(new.trim()) {
        Ok(d) => d,
        Err(e) => {
            report.incompatible = Some(format!("new baseline: {e}"));
            return report;
        }
    };
    match (meta_fields(&old_doc), meta_fields(&new_doc)) {
        (Some(om), Some(nm)) => {
            let get = |m: &[(String, String)], k: &str| {
                m.iter().find(|(n, _)| n == k).map(|(_, v)| v.clone())
            };
            for key in META_STRICT {
                let (ov, nv) = (get(&om, key), get(&nm, key));
                if ov != nv {
                    report.incompatible = Some(format!(
                        "meta mismatch on {key:?}: {} vs {} — refusing to compare",
                        ov.as_deref().unwrap_or("<absent>"),
                        nv.as_deref().unwrap_or("<absent>"),
                    ));
                    return report;
                }
            }
            let (ot, nt) = (get(&om, "threads"), get(&nm, "threads"));
            if ot != nt {
                let _ = writeln!(
                    report.text,
                    "  note: thread counts differ ({} vs {})",
                    ot.as_deref().unwrap_or("<absent>"),
                    nt.as_deref().unwrap_or("<absent>"),
                );
            }
        }
        (None, None) => {
            let _ = writeln!(report.text, "  note: no meta headers (pre-schema baselines)");
        }
        (old_meta, _) => {
            report.incompatible = Some(format!(
                "only the {} baseline has a meta header — refusing to compare",
                if old_meta.is_some() { "old" } else { "new" },
            ));
            return report;
        }
    }
    let (old_progs, new_progs) = match (summarize_bench(&old_doc), summarize_bench(&new_doc)) {
        (Ok(o), Ok(n)) => (o, n),
        (Err(e), _) => {
            report.incompatible = Some(format!("old baseline: {e}"));
            return report;
        }
        (_, Err(e)) => {
            report.incompatible = Some(format!("new baseline: {e}"));
            return report;
        }
    };
    // Verdict-ok regressions are flips even when the verdict string is
    // unchanged in form (e.g. "unknown" expected-safe both sides is fine,
    // but ok=true -> ok=false must gate hard).
    for (name, o) in &old_progs {
        if let Some(n) = new_progs.get(name) {
            let (ook, nok) = (
                o.metrics.get("verdict_ok").copied(),
                n.metrics.get("verdict_ok").copied(),
            );
            if ook == Some(1.0) && nok == Some(0.0) {
                report.flips += 1;
                report.changes += 1;
                let _ = writeln!(report.text, "  {name}: VERDICT FLIP verdict_ok true -> false");
            }
        }
    }
    let mut thresholds = Vec::new();
    if opts.gate {
        thresholds.extend(gate_defaults());
    }
    thresholds.extend(opts.thresholds.iter().cloned());
    diff_programs(&mut report, &thresholds, &old_progs, &new_progs);
    finish(report, "bench-diff")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(verdict: &str, hits: u64, dur: u64) -> String {
        format!(
            concat!(
                "{{\"ts\":0,\"ev\":\"run_start\",\"name\":\"p1\",\"clock\":\"logical\"}}\n",
                "{{\"ts\":1,\"ev\":\"smt\",\"key\":\"aa\",\"size\":3,\"result\":\"unsat\",\"dur_us\":{dur},\"q\":\"\"}}\n",
                "{{\"ts\":2,\"ev\":\"iter\",\"iter\":0,\"outcome\":\"safe\",\"cache_hits\":{hits},\"hbp_terms\":40}}\n",
                "{{\"ts\":3,\"ev\":\"verdict\",\"verdict\":\"{v}\",\"cycles\":1,\"retries\":0}}\n",
                "{{\"ts\":4,\"ev\":\"run_end\",\"dur_us\":0}}\n",
            ),
            v = verdict,
            hits = hits,
            dur = dur,
        )
    }

    #[test]
    fn identical_traces_diff_empty() {
        let a = trace("safe", 5, 100);
        let r = trace_diff(&a, &a, &DiffOptions::default());
        assert_eq!(r.exit_code(), 0, "{}", r.text);
        assert!(r.text.contains("no differences"), "{}", r.text);
    }

    #[test]
    fn verdict_flip_is_exit_2() {
        let r = trace_diff(
            &trace("safe", 5, 100),
            &trace("unsafe", 5, 100),
            &DiffOptions::default(),
        );
        assert_eq!(r.exit_code(), 2, "{}", r.text);
        assert!(r.text.contains("VERDICT FLIP safe -> unsafe"), "{}", r.text);
    }

    #[test]
    fn counter_regression_gates_only_with_a_threshold() {
        let a = trace("safe", 5, 100);
        let b = trace("safe", 50, 100);
        let plain = trace_diff(&a, &b, &DiffOptions::default());
        assert_eq!(plain.exit_code(), 0, "report-only without rules: {}", plain.text);
        assert!(plain.text.contains("cache_hits: 5 -> 50"), "{}", plain.text);
        let opts = DiffOptions {
            thresholds: vec![parse_threshold("cache_hits=2.0").expect("parses")],
            gate: false,
        };
        let gated = trace_diff(&a, &b, &opts);
        assert_eq!(gated.exit_code(), 1, "{}", gated.text);
        assert!(gated.text.contains("OVER THRESHOLD"), "{}", gated.text);
    }

    #[test]
    fn histogram_summaries_appear_in_the_diff() {
        let r = trace_diff(
            &trace("safe", 5, 100),
            &trace("safe", 5, 5000),
            &DiffOptions::default(),
        );
        assert_eq!(r.exit_code(), 0);
        assert!(r.text.contains("smt_solve_us.max: 100 -> 5000"), "{}", r.text);
        // Single observation: the quantile bound clamps to the max.
        assert!(r.text.contains("smt_solve_us.p90: 100 -> 5000"), "{}", r.text);
    }

    #[test]
    fn clock_mismatch_is_incompatible() {
        let wall = trace("safe", 5, 100).replace("logical", "wall");
        let r = trace_diff(&trace("safe", 5, 100), &wall, &DiffOptions::default());
        assert_eq!(r.exit_code(), 3);
        assert!(r.incompatible.expect("set").contains("clock mismatch"));
    }

    fn bench(meta: &str, total_s: f64, smt: u64, verdict_ok: bool) -> String {
        format!(
            "{{\n{meta}  \"programs\": [\n    {{\"name\": \"p1\", \"verdict\": \"safe\", \
             \"verdict_ok\": {verdict_ok}, \"cycles\": 2, \"total_s\": {total_s:.4}, \
             \"smt_queries\": {smt}}}\n  ],\n  \"totals\": {{\"wall_s\": {total_s:.4}, \
             \"smt_queries\": {smt}}}\n}}\n"
        )
    }

    const META: &str = "  \"meta\": {\"schema\": 2, \"suite\": \"table1\", \"threads\": 8, \"clock\": \"wall\"},\n";

    #[test]
    fn bench_gate_passes_identical_and_flags_regression() {
        let old = bench(META, 0.5, 1000, true);
        let same = bench_diff(&old, &old, &DiffOptions { thresholds: vec![], gate: true });
        assert_eq!(same.exit_code(), 0, "{}", same.text);
        // 3x slower and 3x more queries: both gate rules fire.
        let slow = bench(META, 1.5, 3000, true);
        let r = bench_diff(&old, &slow, &DiffOptions { thresholds: vec![], gate: true });
        assert_eq!(r.exit_code(), 1, "{}", r.text);
        assert!(r.text.contains("p1 total_s"), "{}", r.text);
        assert!(r.text.contains("totals.wall_s") || r.text.contains("totals wall_s"), "{}", r.text);
    }

    #[test]
    fn bench_verdict_ok_flip_beats_thresholds() {
        let old = bench(META, 0.5, 1000, true);
        let flipped = bench(META, 0.5, 1000, false);
        let r = bench_diff(&old, &flipped, &DiffOptions { thresholds: vec![], gate: true });
        assert_eq!(r.exit_code(), 2, "{}", r.text);
        assert!(r.text.contains("VERDICT FLIP verdict_ok"), "{}", r.text);
    }

    #[test]
    fn bench_meta_mismatch_refuses() {
        let old = bench(META, 0.5, 1000, true);
        let other =
            "  \"meta\": {\"schema\": 2, \"suite\": \"other\", \"threads\": 8, \"clock\": \"wall\"},\n";
        let r = bench_diff(&old, &bench(other, 0.5, 1000, true), &DiffOptions::default());
        assert_eq!(r.exit_code(), 3, "{}", r.text);
        let missing = bench_diff(&old, &bench("", 0.5, 1000, true), &DiffOptions::default());
        assert_eq!(missing.exit_code(), 3, "{}", missing.text);
    }

    #[test]
    fn threshold_parser_accepts_slack_and_rejects_nonsense() {
        let (name, t) = parse_threshold("total_s=2.0:0.1").expect("parses");
        assert_eq!(name, "total_s");
        assert_eq!(t, Threshold { ratio: 2.0, slack: 0.1 });
        assert!(parse_threshold("noequals").is_err());
        assert!(parse_threshold("x=0.5").is_err(), "ratio below 1");
        assert!(parse_threshold("x=2:-1").is_err(), "negative slack");
    }
}
