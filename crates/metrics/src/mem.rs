//! Memory accounting: a counting allocator wrapper over [`System`].
//!
//! The `homc` and `table1` binaries install [`CountingAlloc`] as their
//! `#[global_allocator]`; libraries and the test harness never do, so the
//! accounting surface reads all-zero there and every consumer treats zero
//! as "not installed".
//!
//! # Attribution rules (see DESIGN.md, "Metrics & profiling architecture")
//!
//! * `live` is the global number of heap bytes currently allocated;
//!   `peak` is its high-water mark since the last [`reset_run`].
//! * The verifier brackets each pipeline phase in a [`PhaseScope`], which
//!   sets a **thread-local** phase tag. An allocation is attributed to the
//!   tag of the allocating thread at allocation time: each phase's
//!   `peak_bytes` is the largest *global* live count observed while that
//!   phase was allocating. Frees are global (a phase releasing memory
//!   lowers `live` for everyone) — per-phase numbers are watermarks, not
//!   balances, so they never go negative and always telescope under the
//!   global peak.
//! * Worker threads spawned inside a phase carry no tag; their allocations
//!   still count toward the global numbers.
//! * [`window_reset`]/[`window_peak`] give the CEGAR loop a per-iteration
//!   watermark for the `peak_bytes` field of `iter` trace records.

#![allow(unsafe_code)] // GlobalAlloc is an unsafe trait; this module only.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

use homc_budget::Phase;

const NPHASES: usize = 5;
const NO_PHASE: u8 = u8::MAX;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static LIVE: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);
static WINDOW_PEAK: AtomicU64 = AtomicU64::new(0);
static PHASE_PEAK: [AtomicU64; NPHASES] = [const { AtomicU64::new(0) }; NPHASES];

thread_local! {
    static PHASE_TAG: Cell<u8> = const { Cell::new(NO_PHASE) };
}

/// Records an allocation of `sz` bytes (public so the accounting logic is
/// unit-testable without installing the allocator).
pub fn account_alloc(sz: u64) {
    ALLOCS.fetch_add(1, Ordering::Relaxed);
    let live = LIVE.fetch_add(sz, Ordering::Relaxed) + sz;
    PEAK.fetch_max(live, Ordering::Relaxed);
    WINDOW_PEAK.fetch_max(live, Ordering::Relaxed);
    // `try_with` guards the TLS-teardown window (allocation during thread
    // destruction must not panic inside the allocator).
    let tag = PHASE_TAG.try_with(Cell::get).unwrap_or(NO_PHASE);
    if (tag as usize) < NPHASES {
        PHASE_PEAK[tag as usize].fetch_max(live, Ordering::Relaxed);
    }
}

/// Records a deallocation of `sz` bytes.
pub fn account_dealloc(sz: u64) {
    LIVE.fetch_sub(sz, Ordering::Relaxed);
}

/// The counting `#[global_allocator]` wrapper over [`System`].
pub struct CountingAlloc;

impl CountingAlloc {
    /// A const constructor, for `static` installation sites.
    pub const fn new() -> CountingAlloc {
        CountingAlloc
    }
}

impl Default for CountingAlloc {
    fn default() -> CountingAlloc {
        CountingAlloc::new()
    }
}

// SAFETY: every method delegates to `System` unchanged; the accounting is
// pure atomic bookkeeping on the side and never touches the heap itself
// (the thread-local is a const-initialized `Cell<u8>`, which allocates
// nothing).
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            account_alloc(layout.size() as u64);
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc_zeroed(layout) };
        if !p.is_null() {
            account_alloc(layout.size() as u64);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        account_dealloc(layout.size() as u64);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            // Model a grow/shrink as free(old) + alloc(new); the watermark
            // updates on the alloc side.
            account_dealloc(layout.size() as u64);
            account_alloc(new_size as u64);
        }
        p
    }
}

/// `true` when the counting allocator is actually serving this process
/// (detected by traffic: any binary that installed it has allocated long
/// before anyone asks).
pub fn installed() -> bool {
    ALLOCS.load(Ordering::Relaxed) > 0
}

/// Heap bytes currently live (0 when not installed).
pub fn live_bytes() -> u64 {
    LIVE.load(Ordering::Relaxed)
}

/// The global live-byte high-water mark since the last [`reset_run`].
pub fn peak_bytes() -> u64 {
    PEAK.load(Ordering::Relaxed)
}

/// One phase's live-byte high-water mark since the last [`reset_run`].
pub fn phase_peak(phase: Phase) -> u64 {
    PHASE_PEAK[phase_index(phase)].load(Ordering::Relaxed)
}

fn phase_index(phase: Phase) -> usize {
    match phase {
        Phase::Abs => 0,
        Phase::Mc => 1,
        Phase::Feas => 2,
        Phase::Interp => 3,
        Phase::Smt => 4,
    }
}

/// Starts a fresh per-run accounting window: the global peak restarts from
/// the current live count and every per-phase peak restarts from zero.
pub fn reset_run() {
    let live = LIVE.load(Ordering::Relaxed);
    PEAK.store(live, Ordering::Relaxed);
    WINDOW_PEAK.store(live, Ordering::Relaxed);
    for p in &PHASE_PEAK {
        p.store(0, Ordering::Relaxed);
    }
}

/// Restarts the iteration window's watermark from the current live count.
pub fn window_reset() {
    WINDOW_PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// The live-byte high-water mark since the last [`window_reset`].
pub fn window_peak() -> u64 {
    WINDOW_PEAK.load(Ordering::Relaxed)
}

/// An RAII phase tag: allocations on this thread are attributed to `phase`
/// until the scope drops (scopes nest; the previous tag is restored).
pub struct PhaseScope {
    prev: u8,
}

/// Tags this thread's allocations with `phase` for the scope's lifetime.
pub fn phase_scope(phase: Phase) -> PhaseScope {
    let prev = PHASE_TAG.with(|t| t.replace(phase_index(phase) as u8));
    PhaseScope { prev }
}

impl Drop for PhaseScope {
    fn drop(&mut self) {
        let prev = self.prev;
        let _ = PHASE_TAG.try_with(|t| t.set(prev));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The accounting statics are process-global, so the logic tests drive
    // `account_alloc`/`account_dealloc` directly and only assert relative
    // movement (other tests in the binary may allocate concurrently — but
    // without the allocator installed, nothing else calls `account_*`, so
    // these counters move only under this test).
    #[test]
    fn watermarks_track_live_bytes() {
        reset_run();
        let base = live_bytes();
        account_alloc(1000);
        account_alloc(500);
        assert_eq!(live_bytes(), base + 1500);
        assert!(peak_bytes() >= base + 1500);
        account_dealloc(1500);
        assert_eq!(live_bytes(), base);
        // Peak survives the free.
        assert!(peak_bytes() >= base + 1500);
        assert!(installed(), "account_alloc marks traffic");
    }

    #[test]
    fn phase_scopes_attribute_and_nest() {
        reset_run();
        {
            let _abs = phase_scope(Phase::Abs);
            account_alloc(4096);
            {
                let _mc = phase_scope(Phase::Mc);
                account_alloc(100);
            }
            // Back in abs after the inner scope drops.
            account_alloc(1);
            account_dealloc(4197);
        }
        assert!(phase_peak(Phase::Abs) >= 4096);
        assert!(phase_peak(Phase::Mc) >= 100);
        assert_eq!(phase_peak(Phase::Interp), 0);
        // Per-phase watermarks telescope under the global peak.
        assert!(phase_peak(Phase::Abs) <= peak_bytes());
        assert!(phase_peak(Phase::Mc) <= peak_bytes());
    }

    #[test]
    fn window_watermark_resets() {
        reset_run();
        account_alloc(2000);
        account_dealloc(2000);
        window_reset();
        let base = live_bytes();
        account_alloc(10);
        assert!(window_peak() >= base + 10);
        account_dealloc(10);
        assert!(window_peak() <= peak_bytes());
    }
}
