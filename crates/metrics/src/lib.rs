//! `homc-metrics`: the measurement layer of the homc pipeline.
//!
//! Four pieces, all dependency-free:
//!
//! * **A typed metrics registry** ([`Metrics`]): named counters and
//!   deterministic log₂-bucketed histograms (SMT solve latency, interpolant
//!   AST size, boolean-program growth, model-checker worklist depth), with a
//!   snapshot/delta API mirroring the counter taxonomy in DESIGN.md. The
//!   handle follows the same `Option<Arc<..>>` design as `homc_trace::Tracer`:
//!   a disabled handle costs one branch per call site and allocates nothing.
//! * **Memory accounting** ([`mod@mem`]): a counting `#[global_allocator]`
//!   wrapper over `System`, installed by the `homc` and `table1` binaries
//!   only, tracking live/peak bytes with a thread-local phase tag.
//! * **A folded-stack self-profiler** ([`mod@profile`]): reconstructs the
//!   span hierarchy of a wall-clock trace (the tracer and the profiler share
//!   one instrumentation point — the `span`/`smt`/`iter` events) and renders
//!   flamegraph.pl-compatible folded stacks with inclusive/exclusive time.
//! * **Run-diff engines** ([`mod@diff`]): `homc trace-diff` and
//!   `homc bench-diff` — per-program per-counter/per-histogram deltas,
//!   verdict-flip detection as a hard error, configurable thresholds.
//!
//! # Determinism
//!
//! Histograms record the same clock the tracer would: under a logical clock
//! every duration observation is `0`, so a `--trace-logical --stats` run is
//! byte-deterministic. Metrics never emit into the trace stream — traces are
//! byte-identical with the registry on or off (tested suite-wide).

#![deny(unsafe_code)] // `mem` opts out locally for the GlobalAlloc impl.
#![warn(missing_docs)]

pub mod diff;
pub mod mem;
pub mod profile;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Monotone event counters, one slot per variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Counter {
    /// Queries the SMT solver actually solved (cache misses + uncached).
    SmtSolves,
    /// Interpolation cut points that produced a non-trivial interpolant.
    InterpCuts,
    /// Model-checker worklist batches drained.
    McRounds,
    /// Definitions abstracted (every definition of every iteration).
    AbsDefs,
    /// Batch jobs that ran to a verdict (any verdict, including `Unknown`).
    JobsDone,
    /// Batch job attempts re-queued after retryable exhaustion.
    JobsRetried,
    /// Batch jobs degraded to `Unknown` (panic, exhaustion, cancellation).
    JobsUnknown,
    /// Query-cache hits answered from the persistent disk tier.
    DiskHits,
    /// Disk-cache records or segments rejected by an integrity check.
    DiskQuarantine,
    /// Definitions whose abstraction was reused verbatim from the
    /// transition memo (cone fingerprint unchanged since the last build).
    AbsDefsReused,
    /// Definitions re-abstracted because a prior memo entry's cone
    /// fingerprint changed (first-time builds count neither way).
    AbsDefsRebuilt,
    /// Feasible implicants emitted by the model-guided enumeration.
    AbsImplicants,
    /// SMT queries avoided by incremental abstraction: prefix probes
    /// answered by an already-found model plus the recorded cost of every
    /// memo-reused definition.
    AbsQueriesSaved,
    /// Relevant context components dropped by the `max_context_atoms` cap
    /// while selecting guard predicates (a precision, not soundness, loss).
    AbsCtxTruncated,
    /// Run-ledger segments or records rejected by an integrity check.
    LedgerQuarantine,
    /// Definitions whose abstraction was replayed from a prior run's
    /// persisted artifact (cross-run incremental re-verification).
    ReverifyDefsSkipped,
    /// Predicates seeded into the initial environment from a prior run's
    /// winning predicate environment.
    ReverifyPredsSeeded,
    /// Artifact-store files rejected by an integrity check and quarantined
    /// (the run degrades to the cold path).
    ArtifactQuarantine,
    /// Verdict-evidence files emitted (one per decisive run with an
    /// evidence directory configured).
    EvidenceEmitted,
    /// Independent evidence checks that validated their verdict.
    CheckPass,
    /// Independent evidence checks that rejected their evidence.
    CheckFail,
    /// Predicate-scheme components of the final environment never projected
    /// by the final boolean program (dead predicates).
    PredsDead,
}

/// All counters, in display order.
pub const COUNTERS: [Counter; 22] = [
    Counter::SmtSolves,
    Counter::InterpCuts,
    Counter::McRounds,
    Counter::AbsDefs,
    Counter::JobsDone,
    Counter::JobsRetried,
    Counter::JobsUnknown,
    Counter::DiskHits,
    Counter::DiskQuarantine,
    Counter::AbsDefsReused,
    Counter::AbsDefsRebuilt,
    Counter::AbsImplicants,
    Counter::AbsQueriesSaved,
    Counter::AbsCtxTruncated,
    Counter::LedgerQuarantine,
    Counter::ReverifyDefsSkipped,
    Counter::ReverifyPredsSeeded,
    Counter::ArtifactQuarantine,
    Counter::EvidenceEmitted,
    Counter::CheckPass,
    Counter::CheckFail,
    Counter::PredsDead,
];

impl Counter {
    const fn index(self) -> usize {
        self as usize
    }

    /// The stable display name (used by `--stats` and the diff tools).
    pub fn name(self) -> &'static str {
        match self {
            Counter::SmtSolves => "smt_solves",
            Counter::InterpCuts => "interp_cuts",
            Counter::McRounds => "mc_rounds",
            Counter::AbsDefs => "abs_defs",
            Counter::JobsDone => "jobs_done",
            Counter::JobsRetried => "jobs_retried",
            Counter::JobsUnknown => "jobs_unknown",
            Counter::DiskHits => "disk_hits",
            Counter::DiskQuarantine => "disk_quarantine",
            Counter::AbsDefsReused => "abs_defs_reused",
            Counter::AbsDefsRebuilt => "abs_defs_rebuilt",
            Counter::AbsImplicants => "abs_implicants",
            Counter::AbsQueriesSaved => "abs_queries_saved",
            Counter::AbsCtxTruncated => "abs_ctx_truncated",
            Counter::LedgerQuarantine => "ledger_quarantine",
            Counter::ReverifyDefsSkipped => "reverify_defs_skipped",
            Counter::ReverifyPredsSeeded => "reverify_preds_seeded",
            Counter::ArtifactQuarantine => "artifact_quarantine",
            Counter::EvidenceEmitted => "evidence_emitted",
            Counter::CheckPass => "check_pass",
            Counter::CheckFail => "check_fail",
            Counter::PredsDead => "preds_dead",
        }
    }

    /// One-line description, used as the Prometheus `# HELP` text.
    pub fn help(self) -> &'static str {
        match self {
            Counter::SmtSolves => "Queries the SMT solver actually solved",
            Counter::InterpCuts => "Interpolation cuts with a non-trivial interpolant",
            Counter::McRounds => "Model-checker worklist batches drained",
            Counter::AbsDefs => "Definitions abstracted across all iterations",
            Counter::JobsDone => "Batch jobs that ran to a verdict",
            Counter::JobsRetried => "Batch job attempts re-queued after retryable exhaustion",
            Counter::JobsUnknown => "Batch jobs degraded to unknown",
            Counter::DiskHits => "Query-cache hits answered from the disk tier",
            Counter::DiskQuarantine => "Disk-cache records or segments rejected by integrity checks",
            Counter::AbsDefsReused => "Definitions reused verbatim from the transition memo",
            Counter::AbsDefsRebuilt => "Definitions re-abstracted after a cone fingerprint change",
            Counter::AbsImplicants => "Feasible implicants from model-guided enumeration",
            Counter::AbsQueriesSaved => "SMT queries avoided by incremental abstraction",
            Counter::AbsCtxTruncated => "Context components dropped by the context-atom cap",
            Counter::LedgerQuarantine => "Run-ledger segments or records rejected by integrity checks",
            Counter::ReverifyDefsSkipped => "Definitions replayed from a prior run's persisted artifact",
            Counter::ReverifyPredsSeeded => "Predicates seeded from a prior run's winning environment",
            Counter::ArtifactQuarantine => "Artifact-store files rejected by integrity checks and quarantined",
            Counter::EvidenceEmitted => "Verdict-evidence files emitted",
            Counter::CheckPass => "Independent evidence checks that validated their verdict",
            Counter::CheckFail => "Independent evidence checks that rejected their evidence",
            Counter::PredsDead => "Final-environment predicate components never projected by the final boolean program",
        }
    }
}

/// Log₂-bucketed histograms, one slot per variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Hist {
    /// Latency of solved SMT queries, in microseconds.
    SmtSolveUs,
    /// Latency of one definition's abstraction task, in microseconds.
    AbsDefUs,
    /// Latency of one whole CEGAR iteration, in microseconds.
    IterUs,
    /// AST size (formula nodes) of discovered interpolants.
    InterpSize,
    /// Boolean-program rule count per iteration (rule-set growth).
    HbpRules,
    /// Boolean-program AST size per iteration.
    HbpTerms,
    /// Model-checker worklist batch size at each drain.
    WorklistDepth,
    /// Wall-clock latency of one batch job attempt, in microseconds.
    JobUs,
}

/// All histograms, in display order.
pub const HISTS: [Hist; 8] = [
    Hist::SmtSolveUs,
    Hist::AbsDefUs,
    Hist::IterUs,
    Hist::InterpSize,
    Hist::HbpRules,
    Hist::HbpTerms,
    Hist::WorklistDepth,
    Hist::JobUs,
];

impl Hist {
    const fn index(self) -> usize {
        self as usize
    }

    /// The stable display name (used by `--stats` and the diff tools).
    pub fn name(self) -> &'static str {
        match self {
            Hist::SmtSolveUs => "smt_solve_us",
            Hist::AbsDefUs => "abs_def_us",
            Hist::IterUs => "iter_us",
            Hist::InterpSize => "interp_size",
            Hist::HbpRules => "hbp_rules",
            Hist::HbpTerms => "hbp_terms",
            Hist::WorklistDepth => "worklist_depth",
            Hist::JobUs => "job_us",
        }
    }

    /// One-line description, used as the Prometheus `# HELP` text.
    pub fn help(self) -> &'static str {
        match self {
            Hist::SmtSolveUs => "Latency of solved SMT queries in microseconds",
            Hist::AbsDefUs => "Latency of one definition's abstraction task in microseconds",
            Hist::IterUs => "Latency of one whole CEGAR iteration in microseconds",
            Hist::InterpSize => "AST size of discovered interpolants",
            Hist::HbpRules => "Boolean-program rule count per iteration",
            Hist::HbpTerms => "Boolean-program AST size per iteration",
            Hist::WorklistDepth => "Model-checker worklist batch size at each drain",
            Hist::JobUs => "Wall-clock latency of one batch job attempt in microseconds",
        }
    }
}

/// Number of histogram buckets: bucket 0 holds the value `0`, bucket `k`
/// (1 ≤ k < 32) holds `[2^(k-1), 2^k)`, and the top bucket saturates —
/// every value ≥ 2³¹ lands there.
pub const NBUCKETS: usize = 33;

/// The bucket index of a value (deterministic, branch-free after the zero
/// check).
pub fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(NBUCKETS - 1)
    }
}

/// The inclusive upper bound of a bucket (`u64::MAX` for the saturated top
/// bucket).
pub fn bucket_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= NBUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

struct HistCell {
    buckets: [AtomicU64; NBUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl HistCell {
    const fn new() -> HistCell {
        HistCell {
            buckets: [const { AtomicU64::new(0) }; NBUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    fn observe(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistSnapshot {
        let mut buckets = [0u64; NBUCKETS];
        for (b, a) in buckets.iter_mut().zip(&self.buckets) {
            *b = a.load(Ordering::Relaxed);
        }
        HistSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

struct Registry {
    counters: [AtomicU64; COUNTERS.len()],
    hists: [HistCell; HISTS.len()],
    /// Logical-clock mode: duration observations are forced to 0 so a
    /// deterministic run yields deterministic histograms.
    logical: bool,
}

/// A cheap, cloneable handle to a shared metrics registry. The default
/// handle is *disabled*: every operation is one branch and a return.
#[derive(Clone, Default)]
pub struct Metrics {
    inner: Option<Arc<Registry>>,
}

impl std::fmt::Debug for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => write!(f, "Metrics(disabled)"),
            Some(r) if r.logical => write!(f, "Metrics(logical)"),
            Some(_) => write!(f, "Metrics(wall)"),
        }
    }
}

impl Metrics {
    /// The disabled handle (same as `Metrics::default()`).
    pub fn disabled() -> Metrics {
        Metrics::default()
    }

    /// An enabled registry. With `logical = true` every duration
    /// observation records `0` (mirroring the tracer's logical clock), so
    /// histograms of a deterministic run are reproducible byte-for-byte.
    pub fn new(logical: bool) -> Metrics {
        Metrics {
            inner: Some(Arc::new(Registry {
                counters: [const { AtomicU64::new(0) }; COUNTERS.len()],
                hists: [const { HistCell::new() }; HISTS.len()],
                logical,
            })),
        }
    }

    /// `true` when observations are actually recorded.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// `true` in deterministic logical-clock mode.
    pub fn is_logical(&self) -> bool {
        self.inner.as_ref().is_some_and(|r| r.logical)
    }

    /// Increments a counter by 1.
    pub fn incr(&self, c: Counter) {
        self.add(c, 1);
    }

    /// Adds `n` to a counter.
    pub fn add(&self, c: Counter, n: u64) {
        if let Some(r) = &self.inner {
            r.counters[c.index()].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Records one value into a histogram.
    pub fn observe(&self, h: Hist, v: u64) {
        if let Some(r) = &self.inner {
            r.hists[h.index()].observe(v);
        }
    }

    /// Records the elapsed time since `started` (µs) into a histogram —
    /// forced to `0` in logical mode so goldens stay byte-identical.
    pub fn observe_dur(&self, h: Hist, started: Instant) {
        if let Some(r) = &self.inner {
            let us = if r.logical {
                0
            } else {
                started.elapsed().as_micros() as u64
            };
            r.hists[h.index()].observe(us);
        }
    }

    /// A consistent snapshot of every counter and histogram (all-zero when
    /// disabled).
    pub fn snapshot(&self) -> Snapshot {
        let mut s = Snapshot::default();
        if let Some(r) = &self.inner {
            for (slot, a) in s.counters.iter_mut().zip(&r.counters) {
                *slot = a.load(Ordering::Relaxed);
            }
            for (slot, h) in s.hists.iter_mut().zip(&r.hists) {
                *slot = h.snapshot();
            }
        }
        s
    }
}

/// A point-in-time copy of one histogram.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Per-bucket observation counts (see [`bucket_of`]).
    pub buckets: [u64; NBUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Largest observed value (of the *whole* history; a delta keeps the
    /// later side's max, since maxima do not subtract).
    pub max: u64,
}

impl Default for HistSnapshot {
    fn default() -> HistSnapshot {
        HistSnapshot {
            buckets: [0; NBUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistSnapshot {
    /// Records one value (snapshots double as plain accumulators for the
    /// diff tools, which build histograms from trace events).
    pub fn observe(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.max = self.max.max(v);
    }

    /// Bucket-wise sum of two snapshots.
    pub fn merge(&self, other: &HistSnapshot) -> HistSnapshot {
        let mut out = *self;
        for (b, o) in out.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        out.count += other.count;
        out.sum += other.sum;
        out.max = out.max.max(other.max);
        out
    }

    /// Bucket-wise difference `self - earlier` (saturating; `max` keeps the
    /// later side's value).
    pub fn delta(&self, earlier: &HistSnapshot) -> HistSnapshot {
        let mut out = *self;
        for (b, e) in out.buckets.iter_mut().zip(&earlier.buckets) {
            *b = b.saturating_sub(*e);
        }
        out.count = out.count.saturating_sub(earlier.count);
        out.sum = out.sum.saturating_sub(earlier.sum);
        out
    }

    /// An upper bound on the `q`-quantile (0 ≤ q ≤ 1): the bound of the
    /// first bucket at which the cumulative count reaches `q * count`.
    pub fn quantile_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                return bucket_bound(i).min(self.max);
            }
        }
        self.max
    }
}

/// A point-in-time copy of the whole registry.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Counter values, indexed like [`COUNTERS`].
    pub counters: [u64; COUNTERS.len()],
    /// Histogram snapshots, indexed like [`HISTS`].
    pub hists: [HistSnapshot; HISTS.len()],
}

impl Snapshot {
    /// One counter's value.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c.index()]
    }

    /// One histogram's snapshot.
    pub fn hist(&self, h: Hist) -> &HistSnapshot {
        &self.hists[h.index()]
    }

    /// The difference `self - earlier`, counter- and bucket-wise.
    pub fn delta(&self, earlier: &Snapshot) -> Snapshot {
        let mut out = self.clone();
        for (c, e) in out.counters.iter_mut().zip(&earlier.counters) {
            *c = c.saturating_sub(*e);
        }
        for (h, e) in out.hists.iter_mut().zip(&earlier.hists) {
            *h = h.delta(e);
        }
        out
    }

    /// Renders the non-empty metrics as indented `--stats` lines (empty
    /// string when nothing was recorded).
    pub fn render(&self, indent: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let nonzero: Vec<String> = COUNTERS
            .iter()
            .filter(|c| self.counter(**c) > 0)
            .map(|c| format!("{}={}", c.name(), self.counter(*c)))
            .collect();
        if !nonzero.is_empty() {
            let _ = writeln!(out, "{indent}{}", nonzero.join(" "));
        }
        for h in HISTS {
            let s = self.hist(h);
            if s.count == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "{indent}{:14} n={:<6} p50<={:<8} p90<={:<8} max={}",
                h.name(),
                s.count,
                s.quantile_bound(0.5),
                s.quantile_bound(0.9),
                s.max,
            );
        }
        out
    }

    /// Renders the whole registry in the Prometheus text exposition format
    /// (`--metrics-out`): every counter as `homc_<name>_total`, every
    /// histogram as cumulative `_bucket{le="..."}` lines over the log₂
    /// bucket bounds plus `_sum`/`_count`, each family preceded by its
    /// `# HELP` and `# TYPE` lines. Every metric is emitted — zero values
    /// included — so scrapers see a stable, complete family set.
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for c in COUNTERS {
            let name = c.name();
            let _ = writeln!(out, "# HELP homc_{name}_total {}", c.help());
            let _ = writeln!(out, "# TYPE homc_{name}_total counter");
            let _ = writeln!(out, "homc_{name}_total {}", self.counter(c));
        }
        for h in HISTS {
            let name = h.name();
            let s = self.hist(h);
            let _ = writeln!(out, "# HELP homc_{name} {}", h.help());
            let _ = writeln!(out, "# TYPE homc_{name} histogram");
            let mut cumulative = 0u64;
            for (i, b) in s.buckets.iter().enumerate() {
                cumulative += b;
                if i == NBUCKETS - 1 {
                    let _ = writeln!(out, "homc_{name}_bucket{{le=\"+Inf\"}} {cumulative}");
                } else {
                    let _ = writeln!(
                        out,
                        "homc_{name}_bucket{{le=\"{}\"}} {cumulative}",
                        bucket_bound(i)
                    );
                }
            }
            let _ = writeln!(out, "homc_{name}_sum {}", s.sum);
            let _ = writeln!(out, "homc_{name}_count {}", s.count);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(7), 3);
        assert_eq!(bucket_of(8), 4);
        // Every bucket's bound is the last value mapping into it.
        for i in 1..NBUCKETS - 1 {
            assert_eq!(bucket_of(bucket_bound(i)), i, "bound of bucket {i}");
            assert_eq!(bucket_of(bucket_bound(i) + 1), i + 1);
        }
    }

    #[test]
    fn top_bucket_saturates() {
        assert_eq!(bucket_of(1 << 31), NBUCKETS - 1);
        assert_eq!(bucket_of(u64::MAX), NBUCKETS - 1);
        let m = Metrics::new(false);
        m.observe(Hist::SmtSolveUs, u64::MAX);
        m.observe(Hist::SmtSolveUs, 1 << 40);
        let s = m.snapshot();
        assert_eq!(s.hist(Hist::SmtSolveUs).buckets[NBUCKETS - 1], 2);
        assert_eq!(s.hist(Hist::SmtSolveUs).max, u64::MAX);
    }

    #[test]
    fn disabled_handle_records_nothing() {
        let m = Metrics::disabled();
        m.incr(Counter::SmtSolves);
        m.observe(Hist::InterpSize, 7);
        assert!(!m.enabled());
        assert_eq!(m.snapshot(), Snapshot::default());
    }

    #[test]
    fn logical_mode_zeroes_durations() {
        let m = Metrics::new(true);
        m.observe_dur(Hist::SmtSolveUs, Instant::now());
        let s = m.snapshot();
        assert_eq!(s.hist(Hist::SmtSolveUs).buckets[0], 1);
        assert_eq!(s.hist(Hist::SmtSolveUs).sum, 0);
    }

    #[test]
    fn merge_and_delta_are_bucketwise() {
        let mut a = HistSnapshot::default();
        let mut b = HistSnapshot::default();
        for v in [1, 2, 3, 100] {
            a.observe(v);
        }
        for v in [1, 100] {
            b.observe(v);
        }
        let merged = a.merge(&b);
        assert_eq!(merged.count, 6);
        assert_eq!(merged.sum, a.sum + b.sum);
        assert_eq!(merged.buckets[bucket_of(100)], 2);

        let d = a.delta(&b);
        assert_eq!(d.count, 2);
        assert_eq!(d.buckets[bucket_of(1)], 0);
        // 2 and 3 share the [2, 4) bucket; b observed neither.
        assert_eq!(bucket_of(2), bucket_of(3));
        assert_eq!(d.buckets[bucket_of(2)], 2);
        assert_eq!(d.buckets[bucket_of(100)], 0);
        // Maxima do not subtract; the delta keeps the later side's max.
        assert_eq!(d.max, 100);
    }

    #[test]
    fn snapshot_delta_mirrors_counters() {
        let m = Metrics::new(false);
        m.add(Counter::SmtSolves, 5);
        let before = m.snapshot();
        m.add(Counter::SmtSolves, 3);
        m.observe(Hist::WorklistDepth, 4);
        let d = m.snapshot().delta(&before);
        assert_eq!(d.counter(Counter::SmtSolves), 3);
        assert_eq!(d.hist(Hist::WorklistDepth).count, 1);
    }

    #[test]
    fn quantiles_are_upper_bounds() {
        let mut h = HistSnapshot::default();
        for v in 1..=100u64 {
            h.observe(v);
        }
        let p50 = h.quantile_bound(0.5);
        let p90 = h.quantile_bound(0.9);
        assert!((50..=63).contains(&p50), "p50 bound {p50}");
        assert!((90..=100).contains(&p90), "p90 bound {p90}");
        assert!(p50 <= p90);
        assert_eq!(h.quantile_bound(1.0), 100);
    }

    #[test]
    fn prometheus_exposition_is_complete_and_cumulative() {
        let m = Metrics::new(false);
        m.add(Counter::SmtSolves, 3);
        m.observe(Hist::InterpSize, 5);
        m.observe(Hist::InterpSize, 1_000_000);
        let text = m.snapshot().render_prometheus();
        // Every family is present (zeros included) with HELP + TYPE lines.
        for c in COUNTERS {
            let fam = format!("homc_{}_total", c.name());
            assert!(text.contains(&format!("# HELP {fam} ")), "{fam}");
            assert!(text.contains(&format!("# TYPE {fam} counter")), "{fam}");
        }
        for h in HISTS {
            let fam = format!("homc_{}", h.name());
            assert!(text.contains(&format!("# TYPE {fam} histogram")), "{fam}");
        }
        assert!(text.contains("homc_smt_solves_total 3"), "{text}");
        // Buckets are cumulative and the +Inf bucket equals the count.
        assert!(text.contains("homc_interp_size_bucket{le=\"+Inf\"} 2"), "{text}");
        assert!(text.contains("homc_interp_size_count 2"), "{text}");
        assert!(text.contains("homc_interp_size_sum 1000005"), "{text}");
        // Sample lines match the Prometheus name grammar.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let name = line.split(['{', ' ']).next().unwrap();
            assert!(
                name.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
                "bad metric name in {line:?}"
            );
        }
    }

    #[test]
    fn render_lists_only_nonempty() {
        let m = Metrics::new(false);
        assert_eq!(m.snapshot().render("  "), "");
        m.incr(Counter::InterpCuts);
        m.observe(Hist::InterpSize, 9);
        let text = m.snapshot().render("  ");
        assert!(text.contains("interp_cuts=1"), "{text}");
        assert!(text.contains("interp_size"), "{text}");
        assert!(!text.contains("smt_solve_us"), "{text}");
    }
}
