#!/usr/bin/env bash
# Tier-1 CI gate: build, lint, test, and a bounded end-to-end suite run.
#
# Offline by design — no network, no external crates. Every stage runs
# under a hard wall-clock cap so a regression can slow things down but
# never wedge the runner.
set -euo pipefail
cd "$(dirname "$0")/.."

CARGO_FLAGS=(--workspace --offline)
STAGE_CAP="${TIER1_STAGE_CAP:-900}" # seconds per stage

run() {
    echo "==> $*"
    timeout --signal=KILL "$STAGE_CAP" "$@"
}

run cargo build --release "${CARGO_FLAGS[@]}"

if command -v cargo-clippy >/dev/null 2>&1; then
    run cargo clippy "${CARGO_FLAGS[@]}" --all-targets -- -D warnings
else
    echo "==> clippy unavailable; skipping lint stage"
fi

run cargo test -q "${CARGO_FLAGS[@]}"

# End-to-end degradation check: with a 1-second per-program deadline the
# whole 28-program suite must terminate with a tally and exit 0 (unknown
# under budget is an outcome, not a failure).
run cargo run --release --offline --bin homc -- --suite --timeout 1

# Trace smoke: one traced suite run must produce a schema-valid JSONL
# trace (validated by the in-tree validator — no jq) and the report
# renderer must accept it. Uses the logical clock so the stage is
# deterministic across runners.
TRACE_SMOKE=target/trace-smoke.jsonl
run cargo run --release --offline --bin homc -- --suite intro1 --trace-logical "$TRACE_SMOKE"
run cargo run --release --offline --bin homc -- trace-validate "$TRACE_SMOKE"
run cargo run --release --offline --bin homc -- trace-report "$TRACE_SMOKE"

# Bench smoke: regenerate Table 1 at full budget and refresh the baseline
# JSON (per-program wall times + hot-path counters). The stage fails on any
# verdict mismatch against the paper; wall-time drift is tracked by diffing
# BENCH_table1.json in review, not gated here (CI machines vary).
run cargo run --release --offline -p homc-bench --bin table1 -- --json BENCH_table1.json

echo "tier1: OK"
