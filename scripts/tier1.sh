#!/usr/bin/env bash
# Tier-1 CI gate: build, lint, test, and a bounded end-to-end suite run.
#
# Offline by design — no network, no external crates. Every stage runs
# under a hard wall-clock cap so a regression can slow things down but
# never wedge the runner.
set -euo pipefail
cd "$(dirname "$0")/.."

CARGO_FLAGS=(--workspace --offline)
STAGE_CAP="${TIER1_STAGE_CAP:-900}" # seconds per stage

run() {
    echo "==> $*"
    timeout --signal=KILL "$STAGE_CAP" "$@"
}

run cargo build --release "${CARGO_FLAGS[@]}"

if command -v cargo-clippy >/dev/null 2>&1; then
    run cargo clippy "${CARGO_FLAGS[@]}" --all-targets -- -D warnings
else
    echo "==> clippy unavailable; skipping lint stage"
fi

run cargo test -q "${CARGO_FLAGS[@]}"

# End-to-end degradation check: with a 1-second per-program deadline the
# whole 28-program suite must terminate with a tally and exit 0 (unknown
# under budget is an outcome, not a failure). The run also exports a
# verdict certificate per decided program; `homc check` then re-validates
# every exported certificate independently of the CEGAR/SMT hot path
# (programs that stayed undecided export nothing and are tolerated in
# whole-suite mode).
EVD_DIR=target/evidence-smoke
rm -rf "$EVD_DIR"
run cargo run --release --offline --bin homc -- --suite --timeout 1 --evidence-dir "$EVD_DIR"
run cargo run --release --offline --bin homc -- check --suite --evidence-dir "$EVD_DIR"

# Trace smoke: one traced suite run must produce a schema-valid JSONL
# trace (validated by the in-tree validator — no jq) and the report
# renderer must accept it. Uses the logical clock so the stage is
# deterministic across runners — which a second run plus trace-diff
# verifies byte-for-byte (exit 0 means no semantic differences either).
TRACE_SMOKE=target/trace-smoke.jsonl
TRACE_SMOKE2=target/trace-smoke-2.jsonl
run cargo run --release --offline --bin homc -- --suite intro1 --trace-logical "$TRACE_SMOKE"
run cargo run --release --offline --bin homc -- trace-validate "$TRACE_SMOKE"
run cargo run --release --offline --bin homc -- trace-report "$TRACE_SMOKE"
run cargo run --release --offline --bin homc -- --suite intro1 --trace-logical "$TRACE_SMOKE2"
run cmp "$TRACE_SMOKE" "$TRACE_SMOKE2"
run cargo run --release --offline --bin homc -- trace-diff "$TRACE_SMOKE" "$TRACE_SMOKE2"

# Profile smoke: the folded-stack self-profiler must produce telescoping,
# well-formed output (the profile subcommand exits non-zero if any child
# span overruns its parent or a folded line fails to parse).
PROFILE_SMOKE=target/profile-smoke.folded
run cargo run --release --offline --bin homc -- profile --suite intro1 -o "$PROFILE_SMOKE"
test -s "$PROFILE_SMOKE"

# Batch smoke: the crash-safe fleet path end to end. A cold `homc batch`
# run populates the persistent cache; a warm rerun must (a) answer queries
# from disk (nonzero disk hits) and (b) reproduce the cold run's verdicts
# exactly. Then a deterministic two-byte payload corruption (dd at a fixed
# offset inside the first record) must be quarantined while the verdicts
# still hold — a byte flip may cost cache hits, never correctness.
BATCH_CACHE=target/batch-cache
BATCH_COLD=target/batch-cold.txt
BATCH_WARM=target/batch-warm.txt
BATCH_DRILL=target/batch-drill.txt
BATCH_PROGRAMS=(sum max mult mc91)
rm -rf "$BATCH_CACHE"
run cargo run --release --offline --bin homc -- batch --workers 4 \
    --cache-dir "$BATCH_CACHE" "${BATCH_PROGRAMS[@]}" | tee "$BATCH_COLD"
run cargo run --release --offline --bin homc -- batch --workers 4 \
    --cache-dir "$BATCH_CACHE" "${BATCH_PROGRAMS[@]}" | tee "$BATCH_WARM"
verdicts() { sed -n 's/^\([a-zA-Z0-9_-]*\) *wall=[0-9.]* -> \(.*\)$/\1 \2/p' "$1"; }
HITS=$(sed -n 's/.*disk hits \([0-9]*\).*/\1/p' "$BATCH_WARM")
if [ "${HITS:-0}" -eq 0 ]; then
    echo "tier1: batch-smoke: warm rerun reported no disk-cache hits" >&2
    exit 1
fi
if ! cmp -s <(verdicts "$BATCH_COLD") <(verdicts "$BATCH_WARM"); then
    echo "tier1: batch-smoke: warm rerun flipped a verdict:" >&2
    diff <(verdicts "$BATCH_COLD") <(verdicts "$BATCH_WARM") >&2 || true
    exit 1
fi
# Header is `homc-cache v1\n` (14 bytes), a record's payload starts 26
# bytes in: offset 40 lands inside the first record's payload, so the
# checksum must catch it and quarantine the segment.
BATCH_SEG=$(ls "$BATCH_CACHE"/seg-*.seg | head -1)
printf 'zz' | dd of="$BATCH_SEG" bs=1 seek=40 conv=notrunc status=none
run cargo run --release --offline --bin homc -- batch --workers 4 \
    --cache-dir "$BATCH_CACHE" "${BATCH_PROGRAMS[@]}" | tee "$BATCH_DRILL"
if ! grep -q '1 quarantined' "$BATCH_DRILL"; then
    echo "tier1: batch-smoke: corrupted segment was not quarantined" >&2
    exit 1
fi
if ! cmp -s <(verdicts "$BATCH_COLD") <(verdicts "$BATCH_DRILL"); then
    echo "tier1: batch-smoke: corruption drill flipped a verdict:" >&2
    diff <(verdicts "$BATCH_COLD") <(verdicts "$BATCH_DRILL") >&2 || true
    exit 1
fi

# Incremental-abstraction smoke: on a multi-iteration program the
# transition memo must actually fire — iterations after the first reuse
# the definitions refinement did not touch. l-zipmap takes >= 3 CEGAR
# cycles, so a run with --stats must report a nonzero abs_defs_reused and
# still verify (verdict regressions here are caught as a failed tally).
ABS_SMOKE=target/abs-incremental-smoke.txt
run cargo run --release --offline --bin homc -- --suite l-zipmap --stats | tee "$ABS_SMOKE"
if ! grep -q 'passed 1, failed 0, unknown 0' "$ABS_SMOKE"; then
    echo "tier1: abs-incremental: l-zipmap no longer verifies" >&2
    exit 1
fi
if ! grep -q 'abs_defs_reused=[1-9]' "$ABS_SMOKE"; then
    echo "tier1: abs-incremental: transition memo reused nothing on a multi-iteration run" >&2
    exit 1
fi

# Cross-run incremental smoke: the warm-edit path end to end. Verify
# l-zipmap from a file with an artifact store, patch one integer literal
# (semantics preserved), and re-verify: the second run must replay prior
# per-definition abstractions (reverify_defs_skipped > 0) and reach the
# identical verdict. The 25% latency gate on the same scenario runs in
# the bench stage below, where both sides are measured in-process.
INCR_DIR=target/incr-smoke
INCR_SRC=target/incr-zipmap.ml
INCR_COLD=target/incr-cold.txt
INCR_WARM=target/incr-warm.txt
rm -rf "$INCR_DIR"
cat > "$INCR_SRC" <<'EOF'
let rec zip x y = if x = 0 then (if y = 0 then x else fail ()) else if y = 0 then fail () else 1 + zip (x - 1) (y - 1) in let rec map x = if x = 0 then x else 1 + map (x - 1) in if n >= 0 then assert (map (zip n n) = n) else ()
EOF
run cargo run --release --offline --bin homc -- "$INCR_SRC" --stats \
    --artifacts-dir "$INCR_DIR" | tee "$INCR_COLD"
sed -i 's/1 + map/(0 + 1) + map/' "$INCR_SRC"
run cargo run --release --offline --bin homc -- "$INCR_SRC" --stats \
    --artifacts-dir "$INCR_DIR" | tee "$INCR_WARM"
if ! grep -q 'reverify_defs_skipped=[1-9]' "$INCR_WARM"; then
    echo "tier1: incr-smoke: edit resubmit replayed no prior definitions" >&2
    exit 1
fi
incr_verdict() { sed -n 's/.* -> \([a-z]*\).*/\1/p' "$1" | head -1; }
if [ "$(incr_verdict "$INCR_COLD")" != "$(incr_verdict "$INCR_WARM")" ]; then
    echo "tier1: incr-smoke: edit resubmit flipped the verdict:" >&2
    echo "tier1:   cold: $(incr_verdict "$INCR_COLD")  warm: $(incr_verdict "$INCR_WARM")" >&2
    exit 1
fi

# Explain smoke: the evidence layer on one safe and one unsafe program,
# named explicitly so a missing certificate is a hard failure. Each
# program verifies with an evidence export, `homc check` re-establishes
# the verdict from the certificate alone, and `homc explain` renders the
# run narrative — which must be byte-deterministic across two runs.
EXPLAIN_A=target/explain-a.txt
EXPLAIN_B=target/explain-b.txt
run cargo run --release --offline --bin homc -- --suite intro1 --evidence-dir "$EVD_DIR"
run cargo run --release --offline --bin homc -- --suite sum-e --evidence-dir "$EVD_DIR"
run cargo run --release --offline --bin homc -- check --suite intro1 --evidence-dir "$EVD_DIR"
run cargo run --release --offline --bin homc -- check --suite sum-e --evidence-dir "$EVD_DIR"
run cargo run --release --offline --bin homc -- explain --suite intro1 | tee "$EXPLAIN_A" >/dev/null
run cargo run --release --offline --bin homc -- explain --suite intro1 | tee "$EXPLAIN_B" >/dev/null
run cmp "$EXPLAIN_A" "$EXPLAIN_B"
run cargo run --release --offline --bin homc -- explain --suite sum-e >/dev/null

# Ledger smoke: the fleet-observability loop end to end. Two batch runs
# append checksummed records to a scratch ledger; `homc history` must
# render a per-program trend over both runs; `homc regress` must gate the
# second run cleanly against the first (exit 0 — two steady runs of the
# same build cannot breach a 1.5x median gate with 100 ms slack). The
# progress stream written along the way must be schema-valid and replay
# through `homc top --snapshot`.
LEDGER_DIR=target/ledger-smoke
LEDGER_PROGRESS=target/ledger-progress.jsonl
LEDGER_HISTORY=target/ledger-history.txt
rm -rf "$LEDGER_DIR"
run cargo run --release --offline --bin homc -- batch --workers 2 \
    --ledger "$LEDGER_DIR" --progress "$LEDGER_PROGRESS" sum max mc91
run cargo run --release --offline --bin homc -- batch --workers 2 \
    --ledger "$LEDGER_DIR" sum max mc91
run cargo run --release --offline --bin homc -- trace-validate "$LEDGER_PROGRESS"
run cargo run --release --offline --bin homc -- top --snapshot "$LEDGER_PROGRESS"
run cargo run --release --offline --bin homc -- history "$LEDGER_DIR" | tee "$LEDGER_HISTORY"
if ! grep -q '3 program(s) over 2 run(s)' "$LEDGER_HISTORY"; then
    echo "tier1: ledger-smoke: history did not see both runs" >&2
    exit 1
fi
run cargo run --release --offline --bin homc -- regress "$LEDGER_DIR"

# Prometheus lint: --metrics-out must emit well-formed text exposition —
# every sample line's metric name matches [a-z_][a-z0-9_]*, every family
# has # HELP and # TYPE lines, every sample value is an integer.
PROM_OUT=target/metrics-smoke.prom
run cargo run --release --offline --bin homc -- --suite intro1 --metrics-out "$PROM_OUT"
test -s "$PROM_OUT"
if grep -vE '^(# (HELP|TYPE) [a-z_][a-z0-9_]* .*|[a-z_][a-z0-9_]*(\{[^}]*\})? [0-9]+)$' "$PROM_OUT" | grep -q .; then
    echo "tier1: prometheus-lint: malformed exposition line(s):" >&2
    grep -vE '^(# (HELP|TYPE) [a-z_][a-z0-9_]* .*|[a-z_][a-z0-9_]*(\{[^}]*\})? [0-9]+)$' "$PROM_OUT" >&2
    exit 1
fi
if ! grep -q '^# HELP ' "$PROM_OUT" || ! grep -q '^# TYPE ' "$PROM_OUT"; then
    echo "tier1: prometheus-lint: missing HELP/TYPE lines" >&2
    exit 1
fi

# Bench smoke: run Table 1 at full budget to a scratch file first and gate
# it against the checked-in baseline with bench-diff — a totals.wall_s
# regression past the gate thresholds (or any verdict flip) fails the
# stage *before* the baseline is refreshed, so a slow build cannot
# silently rewrite its own yardstick. The table1 run itself still fails
# on any verdict mismatch against the paper. A missing or stale-schema
# baseline fails fast with regeneration instructions instead of the
# opaque exit 3 that bench-diff would produce.
BENCH_SCRATCH=target/bench-table1.json
run cargo run --release --offline -p homc-bench --bin table1 -- --json "$BENCH_SCRATCH"
bench_schema() { sed -n 's/.*"schema": \([0-9]*\).*/\1/p' "$1" | head -1; }
# Warm-edit latency gate: on l-zipmap the edit-resubmit rerun must land at
# or under 25% of the cold wall (plus 20 ms of timer slack at these
# sub-second scales). bench-diff thresholds only express regressions
# (ratio >= 1.0), so this improvement floor is checked directly on the
# fresh scratch document; bench-diff below still gates verdict flips and
# slowdowns of the incr column against the committed baseline.
INCR_ROW=$(sed -n 's/.*"name": "l-zipmap".*"total_s": \([0-9.]*\).*"incr_total_s": \([0-9.]*\).*/\1 \2/p' "$BENCH_SCRATCH")
if [ -z "$INCR_ROW" ]; then
    echo "tier1: bench-smoke: scratch baseline has no l-zipmap incr_total_s row" >&2
    exit 1
fi
if ! awk -v row="$INCR_ROW" 'BEGIN { split(row, f, " "); exit !(f[2] <= f[1] * 0.25 + 0.02) }'; then
    echo "tier1: bench-smoke: l-zipmap edit resubmit missed the 25% warm-edit gate (cold/incr seconds: $INCR_ROW)" >&2
    exit 1
fi
bench_regen_hint() {
    echo "tier1: regenerate the baseline with:" >&2
    echo "tier1:   cargo run --release --offline -p homc-bench --bin table1 -- --json BENCH_table1.json" >&2
    echo "tier1: and commit the result." >&2
}
if [ ! -f BENCH_table1.json ]; then
    echo "tier1: BENCH_table1.json is missing — the bench gate has no baseline." >&2
    bench_regen_hint
    exit 1
fi
OLD_SCHEMA=$(bench_schema BENCH_table1.json)
NEW_SCHEMA=$(bench_schema "$BENCH_SCRATCH")
if [ "${OLD_SCHEMA:-none}" != "$NEW_SCHEMA" ]; then
    echo "tier1: BENCH_table1.json has schema ${OLD_SCHEMA:-none} but this build writes schema $NEW_SCHEMA — stale baseline (schema 6 added the evidence-checker column)." >&2
    bench_regen_hint
    exit 1
fi
run cargo run --release --offline --bin homc -- bench-diff BENCH_table1.json "$BENCH_SCRATCH" --gate
cp "$BENCH_SCRATCH" BENCH_table1.json

echo "tier1: OK"
