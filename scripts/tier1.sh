#!/usr/bin/env bash
# Tier-1 CI gate: build, lint, test, and a bounded end-to-end suite run.
#
# Offline by design — no network, no external crates. Every stage runs
# under a hard wall-clock cap so a regression can slow things down but
# never wedge the runner.
set -euo pipefail
cd "$(dirname "$0")/.."

CARGO_FLAGS=(--workspace --offline)
STAGE_CAP="${TIER1_STAGE_CAP:-900}" # seconds per stage

run() {
    echo "==> $*"
    timeout --signal=KILL "$STAGE_CAP" "$@"
}

run cargo build --release "${CARGO_FLAGS[@]}"

if command -v cargo-clippy >/dev/null 2>&1; then
    run cargo clippy "${CARGO_FLAGS[@]}" --all-targets -- -D warnings
else
    echo "==> clippy unavailable; skipping lint stage"
fi

run cargo test -q "${CARGO_FLAGS[@]}"

# End-to-end degradation check: with a 1-second per-program deadline the
# whole 28-program suite must terminate with a tally and exit 0 (unknown
# under budget is an outcome, not a failure).
run cargo run --release --offline --bin homc -- --suite --timeout 1

# Trace smoke: one traced suite run must produce a schema-valid JSONL
# trace (validated by the in-tree validator — no jq) and the report
# renderer must accept it. Uses the logical clock so the stage is
# deterministic across runners.
TRACE_SMOKE=target/trace-smoke.jsonl
run cargo run --release --offline --bin homc -- --suite intro1 --trace-logical "$TRACE_SMOKE"
run cargo run --release --offline --bin homc -- trace-validate "$TRACE_SMOKE"
run cargo run --release --offline --bin homc -- trace-report "$TRACE_SMOKE"

# Bench smoke: run Table 1 at full budget to a scratch file first and gate
# total wall time against the checked-in baseline — a regression of more
# than 25% on totals.wall_s fails the stage *before* the baseline is
# refreshed, so a slow build cannot silently rewrite its own yardstick.
# The run itself still fails on any verdict mismatch against the paper.
BENCH_SCRATCH=target/bench-table1.json
run cargo run --release --offline -p homc-bench --bin table1 -- --json "$BENCH_SCRATCH"
if [ -f BENCH_table1.json ]; then
    base=$(grep -o '"wall_s": *[0-9.]*' BENCH_table1.json | tail -1 | grep -o '[0-9.]*$')
    new=$(grep -o '"wall_s": *[0-9.]*' "$BENCH_SCRATCH" | tail -1 | grep -o '[0-9.]*$')
    echo "==> bench guard: totals.wall_s baseline=${base}s new=${new}s (limit 1.25x)"
    if awk -v b="$base" -v n="$new" 'BEGIN { exit !(n > 1.25 * b) }'; then
        echo "tier1: FAIL — Table 1 wall time regressed more than 25%" >&2
        exit 1
    fi
fi
cp "$BENCH_SCRATCH" BENCH_table1.json

echo "tier1: OK"
