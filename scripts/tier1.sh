#!/usr/bin/env bash
# Tier-1 CI gate: build, lint, test, and a bounded end-to-end suite run.
#
# Offline by design — no network, no external crates. Every stage runs
# under a hard wall-clock cap so a regression can slow things down but
# never wedge the runner.
set -euo pipefail
cd "$(dirname "$0")/.."

CARGO_FLAGS=(--workspace --offline)
STAGE_CAP="${TIER1_STAGE_CAP:-900}" # seconds per stage

run() {
    echo "==> $*"
    timeout --signal=KILL "$STAGE_CAP" "$@"
}

run cargo build --release "${CARGO_FLAGS[@]}"

if command -v cargo-clippy >/dev/null 2>&1; then
    run cargo clippy "${CARGO_FLAGS[@]}" --all-targets -- -D warnings
else
    echo "==> clippy unavailable; skipping lint stage"
fi

run cargo test -q "${CARGO_FLAGS[@]}"

# End-to-end degradation check: with a 1-second per-program deadline the
# whole 28-program suite must terminate with a tally and exit 0 (unknown
# under budget is an outcome, not a failure).
run cargo run --release --offline --bin homc -- --suite --timeout 1

# Trace smoke: one traced suite run must produce a schema-valid JSONL
# trace (validated by the in-tree validator — no jq) and the report
# renderer must accept it. Uses the logical clock so the stage is
# deterministic across runners — which a second run plus trace-diff
# verifies byte-for-byte (exit 0 means no semantic differences either).
TRACE_SMOKE=target/trace-smoke.jsonl
TRACE_SMOKE2=target/trace-smoke-2.jsonl
run cargo run --release --offline --bin homc -- --suite intro1 --trace-logical "$TRACE_SMOKE"
run cargo run --release --offline --bin homc -- trace-validate "$TRACE_SMOKE"
run cargo run --release --offline --bin homc -- trace-report "$TRACE_SMOKE"
run cargo run --release --offline --bin homc -- --suite intro1 --trace-logical "$TRACE_SMOKE2"
run cmp "$TRACE_SMOKE" "$TRACE_SMOKE2"
run cargo run --release --offline --bin homc -- trace-diff "$TRACE_SMOKE" "$TRACE_SMOKE2"

# Profile smoke: the folded-stack self-profiler must produce telescoping,
# well-formed output (the profile subcommand exits non-zero if any child
# span overruns its parent or a folded line fails to parse).
PROFILE_SMOKE=target/profile-smoke.folded
run cargo run --release --offline --bin homc -- profile --suite intro1 -o "$PROFILE_SMOKE"
test -s "$PROFILE_SMOKE"

# Bench smoke: run Table 1 at full budget to a scratch file first and gate
# it against the checked-in baseline with bench-diff — a totals.wall_s
# regression past the gate thresholds (or any verdict flip) fails the
# stage *before* the baseline is refreshed, so a slow build cannot
# silently rewrite its own yardstick. The table1 run itself still fails
# on any verdict mismatch against the paper.
BENCH_SCRATCH=target/bench-table1.json
run cargo run --release --offline -p homc-bench --bin table1 -- --json "$BENCH_SCRATCH"
if [ -f BENCH_table1.json ]; then
    run cargo run --release --offline --bin homc -- bench-diff BENCH_table1.json "$BENCH_SCRATCH" --gate
fi
cp "$BENCH_SCRATCH" BENCH_table1.json

echo "tier1: OK"
