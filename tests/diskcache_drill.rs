//! The corruption drill (ISSUE satellite S3): warm the disk tier, then flip
//! one byte in every offset class of the segment format — header magic,
//! record length field, checksum, payload — and assert that
//!
//! * the verifier's verdict is **identical** to the pristine baseline (a
//!   byte flip may cost cache hits, never correctness), and
//! * the corruption is *detected*: the load report counts a quarantined
//!   segment or bad record, and the `disk_quarantine` metrics counter is
//!   nonzero.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use homc::{suite, verify, Counter, DiskCache, Metrics, QueryCache, Verdict, VerifierOptions};

const PROGRAM: &str = "sum";

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("homc-drill-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    d
}

/// Verifies the drill program against `cache` and returns the verdict.
fn verdict_with(cache: Arc<QueryCache>) -> Verdict {
    let p = suite::find(PROGRAM).expect("suite program");
    let opts = VerifierOptions {
        cache: Some(cache),
        ..VerifierOptions::default()
    };
    verify(p.source, &opts).expect("verification runs").verdict
}

/// Warms a cache on `PROGRAM`, publishes it to `dir`, and returns the
/// pristine verdict plus the published segment's bytes.
fn warm_segment(dir: &Path) -> (Verdict, Vec<u8>) {
    let cache = Arc::new(QueryCache::new());
    let baseline = verdict_with(cache.clone());
    let pub_report = DiskCache::new(dir)
        .publish(&cache)
        .expect("publish succeeds")
        .expect("the run solves queries, so the segment is non-empty");
    assert!(pub_report.records > 0);
    (
        baseline,
        fs::read(&pub_report.path).expect("segment readable"),
    )
}

#[test]
fn byte_flips_never_change_verdicts() {
    let base = tmpdir("classes");
    let (baseline, bytes) = warm_segment(&base.join("pristine"));
    let header_len = bytes.iter().position(|&b| b == b'\n').expect("header line") + 1;
    // One representative offset per class of the record frame
    // `<8-hex len> <16-hex checksum> <payload>\n` (checksum starts at +9,
    // payload at +26), plus the header magic.
    let classes = [
        ("header", 0),
        ("length", header_len),
        ("checksum", header_len + 9),
        ("payload", header_len + 26),
    ];
    for (class, offset) in classes {
        assert!(offset < bytes.len(), "{class}: offset in range");
        let dir = base.join(class);
        fs::create_dir_all(&dir).unwrap();
        let mut corrupt = bytes.clone();
        corrupt[offset] ^= 0x01;
        fs::write(dir.join("seg-000001.seg"), &corrupt).unwrap();

        let metrics = Metrics::new(false);
        let disk = DiskCache::new(&dir).with_metrics(metrics.clone());
        let cache = Arc::new(QueryCache::new());
        let report = disk
            .load_into(&cache)
            .expect("load never hard-fails on content");
        assert!(
            report.quarantined > 0 || report.bad_records > 0,
            "{class}: the flip at offset {offset} must be detected, got {report}"
        );
        assert!(
            metrics.snapshot().counter(Counter::DiskQuarantine) > 0,
            "{class}: quarantine counter must be nonzero"
        );
        assert_eq!(
            verdict_with(cache),
            baseline,
            "{class}: a byte flip changed the verdict"
        );
    }
    let _ = fs::remove_dir_all(&base);
}

#[test]
fn version_mismatch_cold_starts_cleanly() {
    let base = tmpdir("version");
    let dir = base.join("store");
    let (baseline, bytes) = warm_segment(&dir);
    // The header is `homc-cache v1\n`; turn the version digit into `0`.
    let v_off = bytes
        .windows(2)
        .position(|w| w == b"v1")
        .expect("version field")
        + 1;
    let mut old = bytes.clone();
    old[v_off] = b'0';
    let seg = dir.join("seg-000001.seg");
    fs::write(&seg, &old).unwrap();

    let cache = Arc::new(QueryCache::new());
    let report = DiskCache::new(&dir).load_into(&cache).unwrap();
    // A schema bump is a clean cold start, not an integrity event: the stale
    // segment is reclaimed, nothing is quarantined, nothing is loaded.
    assert_eq!(report.stale, 1, "{report}");
    assert_eq!(report.records, 0);
    assert_eq!(report.quarantined, 0);
    assert!(!seg.exists(), "stale segment is reclaimed");
    assert_eq!(verdict_with(cache), baseline);
    let _ = fs::remove_dir_all(&base);
}

#[test]
fn every_header_byte_flip_is_safe() {
    // Denser sweep over the whole header line: whatever byte is hit —
    // magic, space, version, newline — the verdict must hold and the load
    // must either quarantine or cold-start.
    let base = tmpdir("header-sweep");
    let (baseline, bytes) = warm_segment(&base.join("pristine"));
    let header_len = bytes.iter().position(|&b| b == b'\n').expect("header line") + 1;
    for offset in 0..header_len {
        let dir = base.join(format!("off{offset}"));
        fs::create_dir_all(&dir).unwrap();
        let mut corrupt = bytes.clone();
        corrupt[offset] ^= 0x01;
        fs::write(dir.join("seg-000001.seg"), &corrupt).unwrap();
        let cache = Arc::new(QueryCache::new());
        let report = DiskCache::new(&dir).load_into(&cache).unwrap();
        assert!(
            report.quarantined > 0 || report.stale > 0,
            "offset {offset}: corrupt header must quarantine or cold-start, got {report}"
        );
        assert_eq!(report.records, 0, "offset {offset}: nothing may load");
        assert_eq!(
            verdict_with(cache),
            baseline,
            "offset {offset}: verdict flipped"
        );
    }
    let _ = fs::remove_dir_all(&base);
}
