//! Differential testing of the two model-checking engines.
//!
//! The precise direct checker (`homc-hbp`) and the recursion-scheme control
//! skeleton (`homc-hors`) are related by a sound over-approximation:
//!
//! * skeleton fail-free ⇒ boolean program cannot fail;
//! * boolean program may fail ⇒ skeleton contains `fail`.
//!
//! We check both directions of the implication on the abstractions of the
//! whole Table 1 suite, at several refinement stages.

use homc_abs::{abstract_program, AbsEnv, AbsOptions};
use homc_cegar::{build_trace, refine_env, RefineOptions, TraceEnd};
use homc_hbp::check::{model_check, CheckLimits};
use homc_hbp::{find_error_path, source_labels, Checker};
use homc_hors::{rejected, skeleton, TrivialAutomaton};
use homc_lang::frontend;
use homc_smt::SmtSolver;

fn cross_validate(name: &str, bp: &homc_hbp::BProgram) {
    let (precise_fails, _) = match model_check(bp, CheckLimits::default()) {
        Ok(r) => r,
        Err(_) => return, // budget: nothing to compare
    };
    let h = skeleton(bp);
    h.check()
        .unwrap_or_else(|e| panic!("{name}: skeleton kinds: {e}"));
    let automaton = TrivialAutomaton::fail_free(&h, &["fail"]);
    let skeleton_fails = rejected(&h, &automaton).expect("scheme checking");
    assert!(
        !precise_fails || skeleton_fails,
        "{name}: the direct checker found a failure the skeleton misses — \
         the over-approximation is broken"
    );
    // Contrapositive (same fact, asserted in the form the verifier uses).
    if !skeleton_fails {
        assert!(
            !precise_fails,
            "{name}: skeleton fail-free must imply boolean-program safety"
        );
    }
}

#[test]
fn engines_agree_on_suite_abstractions() {
    for p in homc::suite::SUITE {
        let compiled = match frontend(p.source) {
            Ok(c) => c,
            Err(e) => panic!("{}: {e}", p.name),
        };
        let mut env = AbsEnv::initial(&compiled.cps);
        let solver = SmtSolver::new();
        // Stage 0: the initial (coarsest) abstraction.
        let (bp, _) = abstract_program(&compiled.cps, &env, &AbsOptions::default())
            .unwrap_or_else(|e| panic!("{}: {e}", p.name));
        cross_validate(p.name, &bp);

        // Stage 1: after one refinement round (when one exists).
        let Ok(mut checker) = Checker::new(&bp, CheckLimits::default()) else {
            continue;
        };
        if checker.saturate().is_err() || !checker.may_fail() {
            continue;
        }
        let Ok(Some(path)) = find_error_path(&mut checker) else {
            continue;
        };
        let labels = source_labels(&path);
        let Ok(trace) = build_trace(&compiled.cps, &labels, 200_000) else {
            continue;
        };
        if trace.end != TraceEnd::ReachedFail {
            continue;
        }
        if refine_env(
            &compiled.cps,
            &trace,
            &mut env,
            &solver,
            &RefineOptions::default(),
        )
        .is_err()
        {
            continue;
        }
        if let Ok((bp1, _)) = abstract_program(&compiled.cps, &env, &AbsOptions::default()) {
            cross_validate(p.name, &bp1);
        }
    }
}
