//! Randomized and suite-wide checks of the refinement fast path.
//!
//! Three angles on the same contract:
//!
//! * a differential sweep over ~1k random SHP-style constraint chains,
//!   checking that the shared-certificate sequence engine and the legacy
//!   per-cut engine agree on refutability and that every fast-path
//!   interpolant satisfies the Craig conditions at its cut;
//! * a property test that cone-of-influence slicing is sound — deleting
//!   conjuncts outside the contradiction cone never changes satisfiability;
//! * a whole-suite telescoping check: for every infeasible counterexample
//!   the Table 1 programs produce, the fast path's interpolant family
//!   satisfies `I_{k-1} ∧ φ_k ⇒ I_k` at every cut.
//!
//! Self-contained xorshift generation, as in `properties.rs`: reproducible,
//! no external crates.

use homc_abs::{abstract_program, AbsEnv, AbsOptions};
use homc_cegar::slice::{components, cone_events, screen_components, CompVerdict};
use homc_cegar::{build_trace, fastpath_sequence, refine_env, Event, RefineOptions, TraceEnd};
use homc_hbp::check::CheckLimits;
use homc_hbp::{find_error_path, source_labels, Checker};
use homc_lang::frontend;
use homc_smt::{
    int_sat, interpolate_budgeted_cached, interpolate_sequence, Atom, Budget, Formula, IntResult,
    InterpError, InterpOptions, LinExpr, SatResult, SmtSolver, Var,
};

/// The solver is integer-complete only up to its branch & bound depth, and
/// integer-split interpolants sometimes need divisibility arguments the
/// search cannot express (it reports [`SatResult::Unknown`]). A property
/// check therefore asserts the *refutable* direction — no integer
/// countermodel may exist — and the callers count decisive (`Unsat`)
/// verdicts to make sure the sweep retains teeth.
fn refutes(solver: &SmtSolver, f: &Formula, decisive: &mut usize) -> bool {
    match solver.check(f) {
        SatResult::Sat(_) => false,
        SatResult::Unsat => {
            *decisive += 1;
            true
        }
        _ => true,
    }
}

/// Deterministic xorshift64* generator (same idiom as `properties.rs`).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed | 1)
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn range(&mut self, lo: i128, hi: i128) -> i128 {
        let span = (hi - lo + 1) as u128;
        lo + (self.next_u64() as u128 % span) as i128
    }

    fn index(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// Case count, scaled up under the `slow-tests` feature.
fn cases(fast: usize) -> usize {
    if cfg!(feature = "slow-tests") {
        fast * 4
    } else {
        fast
    }
}

const VARS: [&str; 4] = ["x", "y", "z", "w"];

/// A small linear expression over one variable pool (small coefficients so
/// certificate weights stay far from the overflow guard).
fn gen_linexpr(rng: &mut Rng, pool: &[&str]) -> LinExpr {
    let mut e = LinExpr::constant(rng.range(-6, 6));
    for _ in 0..=rng.index(2) {
        e = e + LinExpr::term(rng.range(-3, 3), Var::new(pool[rng.index(pool.len())]));
    }
    e
}

fn gen_atom(rng: &mut Rng, pool: &[&str]) -> Atom {
    let a = gen_linexpr(rng, pool);
    let b = gen_linexpr(rng, pool);
    match rng.index(3) {
        0 => Atom::le(a, b),
        1 => Atom::ge(a, b),
        _ => Atom::eq(a, b),
    }
}

/// A random A-normalized chain: each part is a cube of 0–2 atoms, the way
/// SHP path conditions decompose at Bind/Rand cut points.
fn gen_chain(rng: &mut Rng) -> Vec<Formula> {
    let n = 3 + rng.index(5);
    (0..n)
        .map(|_| Formula::and((0..rng.index(3)).map(|_| Formula::atom(gen_atom(rng, &VARS)))))
        .collect()
}

/// The legacy per-cut split: A = parts[..=k], B = parts[k+1..].
fn cut_sides(parts: &[Formula], k: usize) -> (Formula, Formula) {
    (
        Formula::and(parts[..=k].iter().cloned()),
        Formula::and(parts[k + 1..].iter().cloned()),
    )
}

#[test]
fn sequence_agrees_with_per_cut_engine() {
    let mut rng = Rng::new(0x5e9_fa57);
    // A modest split depth keeps both engines cheap on gcd-hard random
    // chains (they bail structurally instead of searching deep).
    let opts = InterpOptions {
        split_depth: 12,
        ..InterpOptions::default()
    };
    let budget = Budget::unlimited();
    // A shallow branch & bound keeps the verification checks cheap; the
    // undecided remainder is covered by the `decisive` floor below.
    let mut solver = SmtSolver::new();
    solver.set_bb_depth(10);
    let (mut refuted, mut sat, mut skipped) = (0usize, 0usize, 0usize);
    let (mut decisive, mut checks) = (0usize, 0usize);
    for case in 0..cases(1000) {
        let parts = gen_chain(&mut rng);
        match interpolate_sequence(&parts, opts, budget, None) {
            Ok(seq) => {
                refuted += 1;
                assert_eq!(seq.len(), parts.len() - 1, "case {case}: family size");
                // The per-cut engine must agree the chain refutes (the
                // conjunction is cut-independent, so one cut suffices).
                let mid = (parts.len() - 1) / 2;
                let (ma, mb) = cut_sides(&parts, mid);
                let per_cut = interpolate_budgeted_cached(&ma, &mb, opts, budget, None);
                assert!(
                    !matches!(per_cut, Err(InterpError::NotRefutable)),
                    "case {case}: sequence refuted but per-cut engine found a \
                     model\nparts: {parts:?}"
                );
                for (k, i) in seq.iter().enumerate() {
                    let (a, b) = cut_sides(&parts, k);
                    // Every fast-path interpolant must satisfy the Craig
                    // conditions: vocabulary, A ⇒ I, I ∧ B unsat.
                    let shared: std::collections::BTreeSet<Var> =
                        a.vars().intersection(&b.vars()).cloned().collect();
                    assert!(
                        i.vars().is_subset(&shared),
                        "case {case} cut {k}: interpolant {i} leaks variables"
                    );
                    // Deep split recursion yields exponentially large
                    // disjunctive interpolants; solver-checking those is
                    // itself exponential, so the semantic checks run on the
                    // small (overwhelmingly common) ones.
                    if i.size() > 64 {
                        continue;
                    }
                    checks += 3;
                    assert!(
                        refutes(
                            &solver,
                            &Formula::and2(a.clone(), Formula::not(i.clone())),
                            &mut decisive,
                        ),
                        "case {case} cut {k}: countermodel to A ⇒ {i}\nparts: {parts:?}"
                    );
                    assert!(
                        refutes(&solver, &Formula::and2(i.clone(), b), &mut decisive),
                        "case {case} cut {k}: interpolant {i} consistent with the \
                         suffix\nparts: {parts:?}"
                    );
                    // Telescoping: I_{k-1} ∧ φ_k ⇒ I_k.
                    let prev = if k == 0 {
                        Formula::True
                    } else {
                        seq[k - 1].clone()
                    };
                    assert!(
                        refutes(
                            &solver,
                            &Formula::and2(
                                Formula::and2(prev, parts[k].clone()),
                                Formula::not(i.clone()),
                            ),
                            &mut decisive,
                        ),
                        "case {case} cut {k}: family does not telescope\nparts: {parts:?}"
                    );
                }
            }
            Err(InterpError::NotRefutable) => {
                sat += 1;
                // The sequence engine claims an integer model exists, so the
                // per-cut engine must not refute the chain.
                let (a, b) = cut_sides(&parts, 0);
                let per_cut = interpolate_budgeted_cached(&a, &b, opts, budget, None);
                assert!(
                    matches!(per_cut, Err(InterpError::NotRefutable)),
                    "case {case}: sequence found a model but per-cut engine \
                     says {per_cut:?}\nparts: {parts:?}"
                );
            }
            // Structural bail-outs (certificate-weight overflow, split
            // budget); the production code falls back to the per-cut engine.
            Err(_) => skipped += 1,
        }
    }
    assert!(
        refuted > 50,
        "sweep too easy: only {refuted} refuted chains"
    );
    assert!(sat > 50, "sweep too easy: only {sat} satisfiable chains");
    assert!(
        skipped < cases(1000) / 10,
        "too many structural bail-outs: {skipped}"
    );
    assert!(
        decisive * 2 > checks,
        "verification mostly undecided: {decisive}/{checks}"
    );
}

/// All arithmetic atoms of a conjunction of cube events.
fn event_atoms(events: &[Event], keep: impl Fn(usize) -> bool) -> Vec<Atom> {
    let mut out = Vec::new();
    for (i, e) in events.iter().enumerate() {
        if !keep(i) {
            continue;
        }
        for l in homc_smt::cube_literals(&e.formula()).expect("cube events") {
            match l {
                homc_smt::Literal::Arith(a) => out.push(a),
                homc_smt::Literal::Bool(..) => unreachable!("arith-only generator"),
            }
        }
    }
    out
}

#[test]
fn slicing_preserves_satisfiability() {
    // Three variable-disjoint pools; each event draws from one pool, so
    // chains typically split into several connected components.
    const POOLS: [[&str; 2]; 3] = [["a", "b"], ["c", "d"], ["e", "f"]];
    let mut rng = Rng::new(0xc03e);
    for case in 0..cases(400) {
        let n = 2 + rng.index(8);
        let events: Vec<Event> = (0..n)
            .map(|_| {
                let pool = POOLS[rng.index(POOLS.len())];
                Event::Cond(Formula::and(
                    (0..rng.index(3)).map(|_| Formula::atom(gen_atom(&mut rng, &pool))),
                ))
            })
            .collect();
        let slice = components(&events);

        // Components partition the variables: no variable may appear in two
        // distinct components (that is what makes deletion sound).
        let mut comp_of_var: std::collections::BTreeMap<Var, usize> = Default::default();
        for (i, e) in events.iter().enumerate() {
            let Some(c) = slice.comp_of[i] else { continue };
            for v in e.formula().vars() {
                let prev = comp_of_var.insert(v.clone(), c);
                assert!(
                    prev.is_none_or(|p| p == c),
                    "case {case}: variable {v} spans two components"
                );
            }
        }

        let verdicts = screen_components(&events, &slice, 12, Budget::unlimited(), None)
            .expect("unlimited budget");
        let cone = cone_events(&slice, &verdicts);
        let full = event_atoms(&events, |_| true);

        // Soundness: a component the screener refutes really is
        // unsatisfiable on its own (checked by the independent solver).
        for (c, v) in verdicts.iter().enumerate() {
            if *v == CompVerdict::Unsat {
                let own = event_atoms(&events, |i| slice.comp_of[i] == Some(c));
                assert!(
                    !matches!(int_sat(&own, 24), IntResult::Sat(_)),
                    "case {case}: component {c} screened unsat but has a model"
                );
            }
        }
        match int_sat(&full, 24) {
            // A satisfiable chain must have an empty cone: no component may
            // be falsely refuted, so nothing is ever sliced away from a
            // chain that has a model.
            IntResult::Sat(_) => assert!(
                verdicts.iter().all(|v| *v == CompVerdict::Other),
                "case {case}: satisfiable chain but nonempty cone"
            ),
            // An unsatisfiable chain with a nonempty cone: deleting every
            // out-of-cone conjunct must preserve unsatisfiability. (An
            // empty cone only means the depth-bounded screener could not
            // decide any component — slicing then simply does not fire.)
            IntResult::Unsat(_) => {
                if cone.iter().any(|&b| b) {
                    let sliced = event_atoms(&events, |i| cone[i]);
                    assert!(
                        !matches!(int_sat(&sliced, 24), IntResult::Sat(_)),
                        "case {case}: sliced chain lost the contradiction"
                    );
                }
            }
            IntResult::Unknown => {}
        }
    }
}

#[test]
fn fastpath_telescopes_on_suite_counterexamples() {
    let solver = SmtSolver::new();
    let mut families = 0usize;
    let (mut decisive, mut checks) = (0usize, 0usize);
    for p in homc::suite::SUITE {
        let compiled = match frontend(p.source) {
            Ok(c) => c,
            Err(e) => panic!("{}: {e}", p.name),
        };
        let mut env = AbsEnv::initial(&compiled.cps);
        // Walk the CEGAR loop by hand, checking the interpolant family of
        // every infeasible counterexample the suite program produces.
        for _round in 0..8 {
            let Ok((bp, _)) = abstract_program(&compiled.cps, &env, &AbsOptions::default()) else {
                break;
            };
            let Ok(mut checker) = Checker::new(&bp, CheckLimits::default()) else {
                break;
            };
            if checker.saturate().is_err() || !checker.may_fail() {
                break;
            }
            let Ok(Some(path)) = find_error_path(&mut checker) else {
                break;
            };
            let labels = source_labels(&path);
            let Ok(trace) = build_trace(&compiled.cps, &labels, 200_000) else {
                break;
            };
            if trace.end != TraceEnd::ReachedFail {
                break;
            }
            if let Some((parts, sols)) = fastpath_sequence(&trace) {
                families += 1;
                assert_eq!(sols.len() + 1, parts.len(), "{}: family size", p.name);
                let mut prev = Formula::True;
                for (k, i) in sols.iter().enumerate() {
                    let (a, b) = cut_sides(&parts, k);
                    checks += 3;
                    assert!(
                        refutes(
                            &solver,
                            &Formula::and2(a, Formula::not(i.clone())),
                            &mut decisive,
                        ),
                        "{} cut {k}: countermodel to A ⇒ {i}",
                        p.name
                    );
                    assert!(
                        refutes(&solver, &Formula::and2(i.clone(), b), &mut decisive),
                        "{} cut {k}: interpolant {i} consistent with the suffix",
                        p.name
                    );
                    assert!(
                        refutes(
                            &solver,
                            &Formula::and2(
                                Formula::and2(prev, parts[k].clone()),
                                Formula::not(i.clone()),
                            ),
                            &mut decisive,
                        ),
                        "{} cut {k}: family does not telescope at {i}",
                        p.name
                    );
                    prev = i.clone();
                }
            }
            // Refine and continue; a feasible or exhausted path ends the walk.
            match refine_env(
                &compiled.cps,
                &trace,
                &mut env,
                &solver,
                &RefineOptions::default(),
            ) {
                Ok((homc_cegar::Feasibility::Infeasible, true)) => {}
                _ => break,
            }
        }
    }
    assert!(
        families >= 10,
        "suite exercised only {families} fast-path families"
    );
    assert!(
        decisive * 2 > checks,
        "verification mostly undecided: {decisive}/{checks}"
    );
}
