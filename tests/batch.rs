//! Batch degradation (ISSUE satellite S4): with per-job panics and budget
//! exhaustion injected, the batch still completes with one report entry per
//! job, the tallies add up, and the **unaffected** jobs are bit-for-bit
//! undisturbed — their logical traces are byte-identical to solo runs.

use homc::{run_batch, suite, BatchJob, BatchOptions, JobFault, JobStatus};

fn job(name: &str) -> BatchJob {
    let p = suite::find(name).expect("suite program");
    BatchJob {
        name: p.name.to_string(),
        source: p.source.to_string(),
        expected: Some(p.expected),
    }
}

/// The job's logical trace from a one-job, fault-free batch.
fn solo_trace(name: &str) -> String {
    let opts = BatchOptions {
        workers: 1,
        capture_traces: true,
        logical: true,
        ..BatchOptions::default()
    };
    let report = run_batch(vec![job(name)], &opts).expect("solo batch runs");
    assert_eq!(report.failed, 0);
    report.jobs[0].trace.clone().expect("trace captured")
}

#[test]
fn faulted_batch_completes_with_full_report() {
    let jobs = vec![job("sum"), job("max"), job("mult"), job("mc91")];
    let n = jobs.len();
    let opts = BatchOptions {
        workers: 2,
        capture_traces: true,
        logical: true,
        job_faults: vec![
            "0:panic".parse::<JobFault>().unwrap(),
            "2:exhaust".parse::<JobFault>().unwrap(),
        ],
        ..BatchOptions::default()
    };
    let report = run_batch(jobs, &opts).expect("batch always terminates");

    // Complete per-job report, tallies sum exactly.
    assert_eq!(report.jobs.len(), n);
    assert_eq!(report.passed + report.failed + report.unknown, n);
    assert_eq!(report.failed, 0, "injected faults degrade, never fail");
    assert_eq!(report.unknown, 2);
    assert_eq!(report.passed, 2);

    // The panicked job is trapped into a structured Unknown.
    let panicked = &report.jobs[0];
    assert_eq!(panicked.status, JobStatus::Unknown);
    assert!(
        panicked.verdict.contains("internal fault"),
        "got {:?}",
        panicked.verdict
    );

    // The exhausted job burned its one retry, then settled on the degraded
    // verdict with the trigger recorded.
    let exhausted = &report.jobs[2];
    assert_eq!(exhausted.status, JobStatus::Unknown);
    assert_eq!(exhausted.attempts, 2, "one bounded retry");
    assert!(exhausted.retry_detail.is_some());
    assert!(
        exhausted.verdict.contains("fuel"),
        "got {:?}",
        exhausted.verdict
    );

    // Per-job isolation: the unaffected jobs' logical traces are
    // byte-identical to solo runs of the same programs.
    for idx in [1usize, 3] {
        let entry = &report.jobs[idx];
        assert_eq!(entry.status, JobStatus::Passed);
        let batch_trace = entry.trace.as_deref().expect("trace captured");
        let solo = solo_trace(&entry.name);
        assert_eq!(
            batch_trace, solo,
            "{}: trace perturbed by a neighbouring fault",
            entry.name
        );
    }
}

#[test]
fn every_job_panicking_still_reports() {
    let jobs = vec![job("sum"), job("max")];
    let opts = BatchOptions {
        workers: 2,
        job_faults: vec![
            "0:panic".parse::<JobFault>().unwrap(),
            "1:panic".parse::<JobFault>().unwrap(),
        ],
        ..BatchOptions::default()
    };
    let report = run_batch(jobs, &opts).expect("batch survives total panic");
    assert_eq!(report.jobs.len(), 2);
    assert_eq!(report.unknown, 2);
    assert!(report
        .jobs
        .iter()
        .all(|j| j.status == JobStatus::Unknown && j.verdict.contains("internal fault")));
}

#[test]
fn deadline_exhaustion_degrades_to_unknown() {
    // A batch-wide deadline far below what the suite needs: jobs settle on
    // Unknown (deadline exhaustion is not retryable), none abort, tallies
    // still sum.
    let jobs = vec![job("repeat"), job("mult")];
    let n = jobs.len();
    let mut opts = BatchOptions {
        workers: 2,
        ..BatchOptions::default()
    };
    opts.verify.timeout = Some(std::time::Duration::from_nanos(1));
    let report = run_batch(jobs, &opts).expect("batch terminates under deadline");
    assert_eq!(report.jobs.len(), n);
    assert_eq!(report.passed + report.failed + report.unknown, n);
    assert_eq!(report.failed, 0);
    assert_eq!(report.unknown, n);
    for j in &report.jobs {
        assert_eq!(
            j.attempts, 1,
            "{}: deadline exhaustion is not retried",
            j.name
        );
        assert!(j.verdict.starts_with("unknown"), "got {:?}", j.verdict);
    }
}
