//! Property-based tests (proptest) for the core substrates.

use proptest::prelude::*;

use homc_smt::{
    int_sat, interpolate, is_interpolant, rational_sat, Atom, Formula, IntResult, LinExpr,
    RatResult, SatResult, SmtSolver, Var,
};

const VARS: [&str; 4] = ["x", "y", "z", "w"];

fn arb_linexpr() -> impl Strategy<Value = LinExpr> {
    (
        prop::collection::vec((-5i128..=5, 0usize..VARS.len()), 0..3),
        -10i128..=10,
    )
        .prop_map(|(terms, k)| {
            let mut e = LinExpr::constant(k);
            for (c, v) in terms {
                e = e + LinExpr::term(c, Var::new(VARS[v]));
            }
            e
        })
}

fn arb_atom() -> impl Strategy<Value = Atom> {
    (arb_linexpr(), arb_linexpr(), 0usize..=4).prop_map(|(a, b, op)| match op {
        0 => Atom::le(a, b),
        1 => Atom::lt(a, b),
        2 => Atom::ge(a, b),
        3 => Atom::gt(a, b),
        _ => Atom::eq(a, b),
    })
}

fn arb_formula(depth: u32) -> impl Strategy<Value = Formula> {
    let leaf = arb_atom().prop_map(Formula::atom);
    leaf.prop_recursive(depth, 16, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::and2(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::or2(a, b)),
            inner.prop_map(Formula::not),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// A model returned by the conjunction solver satisfies every atom.
    #[test]
    fn int_sat_models_are_models(atoms in prop::collection::vec(arb_atom(), 1..6)) {
        if let IntResult::Sat(m) = int_sat(&atoms, 32) {
            let env = |v: &Var| m.get(v).copied().or(Some(0));
            for a in &atoms {
                prop_assert_eq!(a.eval(&env), Some(true), "violated {}", a);
            }
        }
    }

    /// Unsat certificates check out (Farkas combination sums to a positive
    /// constant).
    #[test]
    fn farkas_certificates_verify(atoms in prop::collection::vec(arb_atom(), 1..6)) {
        if let RatResult::Unsat(cert) = rational_sat(&atoms) {
            prop_assert!(homc_smt::check_certificate(&atoms, &cert));
        }
    }

    /// The solver agrees with brute-force evaluation on a small grid: if
    /// some grid point satisfies the formula, the solver must say Sat.
    #[test]
    fn solver_not_wrongly_unsat(f in arb_formula(2)) {
        let solver = SmtSolver::new();
        let verdict = solver.check(&f);
        let mut some_model = false;
        'grid: for x in -3i128..=3 {
            for y in -3i128..=3 {
                for z in -3i128..=3 {
                    let ints = |v: &Var| Some(match v.name() {
                        "x" => x,
                        "y" => y,
                        "z" => z,
                        _ => 0,
                    });
                    if f.eval(&ints, &|_| Some(false)) == Some(true) {
                        some_model = true;
                        break 'grid;
                    }
                }
            }
        }
        if some_model {
            prop_assert!(
                !matches!(verdict, SatResult::Unsat),
                "grid model exists but solver says Unsat for {}", f
            );
        }
    }

    /// Sat verdicts come with genuine models.
    #[test]
    fn solver_models_evaluate_true(f in arb_formula(2)) {
        let solver = SmtSolver::new();
        if let SatResult::Sat(m) = solver.check(&f) {
            prop_assert!(m.eval(&f), "returned model falsifies {}", f);
        }
    }

    /// Interpolants satisfy all three defining properties whenever the
    /// procedure succeeds.
    #[test]
    fn interpolants_are_interpolants(a in arb_formula(1), b in arb_formula(1)) {
        let solver = SmtSolver::new();
        if matches!(solver.check(&Formula::and2(a.clone(), b.clone())), SatResult::Unsat) {
            if let Ok(i) = interpolate(&a, &b) {
                prop_assert!(is_interpolant(&a, &b, &i),
                    "bad interpolant {} for A={} B={}", i, a, b);
            }
        }
    }

    /// NNF preserves meaning.
    #[test]
    fn nnf_preserves_semantics(f in arb_formula(2), x in -3i128..=3, y in -3i128..=3) {
        let ints = |v: &Var| Some(match v.name() {
            "x" => x,
            "y" => y,
            _ => 0,
        });
        let bools = |_: &Var| Some(false);
        prop_assert_eq!(f.eval(&ints, &bools), f.nnf().eval(&ints, &bools));
    }
}

mod frontend_props {
    use super::*;
    use homc_lang::ast::{BinOp, SurfaceExpr};
    use homc_lang::eval::{run, Label, Outcome, ScriptDriver};
    use homc_lang::frontend;

    /// Small arithmetic/boolean programs with assertions and a free `n`.
    fn arb_int_expr(depth: u32) -> impl Strategy<Value = SurfaceExpr> {
        let leaf = prop_oneof![
            (-9i64..=9).prop_map(SurfaceExpr::Int),
            Just(SurfaceExpr::Var("n".into())),
        ];
        leaf.prop_recursive(depth, 12, 2, |inner| {
            (inner.clone(), inner, prop_oneof![Just(BinOp::Add), Just(BinOp::Sub), Just(BinOp::Mul)])
                .prop_map(|(a, b, op)| SurfaceExpr::BinOp(op, Box::new(a), Box::new(b)))
        })
    }

    fn arb_program() -> impl Strategy<Value = SurfaceExpr> {
        (arb_int_expr(2), arb_int_expr(2), 0usize..=3).prop_map(|(a, b, cmp)| {
            let op = [BinOp::Le, BinOp::Lt, BinOp::Ge, BinOp::Eq][cmp];
            // if a ⋈ b then assert (a ⋈ b) else () — always safe; plus a
            // sibling that asserts the condition directly — possibly unsafe.
            SurfaceExpr::If(
                Box::new(SurfaceExpr::BinOp(op, Box::new(a.clone()), Box::new(b.clone()))),
                Box::new(SurfaceExpr::Assert(Box::new(SurfaceExpr::BinOp(
                    op,
                    Box::new(a),
                    Box::new(b),
                )))),
                Box::new(SurfaceExpr::Unit),
            )
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The front end round-trips: elaborated and CPS kernels type-check
        /// and agree with each other on failure under random schedules.
        #[test]
        fn cps_preserves_failure(e in arb_program(), n in -4i64..=4, bits in 0u8..16) {
            // Render through the pretty-printer-free path: build source via
            // the AST directly by compiling a textual equivalent is not
            // available, so use the typed pipeline directly.
            let typed = match homc_lang::types::infer(&e) {
                Ok(t) => t,
                Err(_) => return Ok(()),
            };
            let direct = match homc_lang::elaborate::elaborate(&typed) {
                Ok(p) => p,
                Err(_) => return Ok(()),
            };
            prop_assert!(direct.check().is_ok());
            let cps = homc_lang::cps::cps_transform(&direct);
            prop_assert!(cps.check().is_ok());
            prop_assert!(cps.is_cps_normal());
            let labels: Vec<Label> = (0..4).map(|i| if (bits >> i) & 1 == 1 { Label::One } else { Label::Zero }).collect();
            let mut d1 = ScriptDriver::new(labels.clone(), vec![n]);
            let mut d2 = ScriptDriver::new(labels, vec![n]);
            let (o1, t1) = run(&direct, &mut d1, 100_000);
            let (o2, t2) = run(&cps, &mut d2, 100_000);
            prop_assert_eq!(o1.is_fail(), o2.is_fail());
            prop_assert_eq!(t1, t2);
        }

        /// End-to-end soundness fuzzing: whenever the verifier says Safe,
        /// no concrete schedule reaches fail.
        #[test]
        fn verifier_safe_implies_no_concrete_failure(
            e in arb_program(),
            n in -4i64..=4,
            bits in 0u8..16,
        ) {
            let typed = match homc_lang::types::infer(&e) {
                Ok(t) => t,
                Err(_) => return Ok(()),
            };
            let direct = match homc_lang::elaborate::elaborate(&typed) {
                Ok(p) => p,
                Err(_) => return Ok(()),
            };
            let cps = homc_lang::cps::cps_transform(&direct);
            let compiled = homc_lang::Compiled {
                size: 0,
                order: direct.order(),
                direct,
                cps,
            };
            let out = match homc::verify_compiled(&compiled, &homc::VerifierOptions::default()) {
                Ok(o) => o,
                Err(_) => return Ok(()),
            };
            if out.verdict.is_safe() {
                let labels: Vec<Label> = (0..4)
                    .map(|i| if (bits >> i) & 1 == 1 { Label::One } else { Label::Zero })
                    .collect();
                let mut d = ScriptDriver::new(labels, vec![n]);
                let (o, _) = run(&compiled.cps, &mut d, 100_000);
                prop_assert!(
                    !matches!(o, Outcome::Fail),
                    "verifier said Safe but n={n}, bits={bits:#b} fails"
                );
            }
        }
    }

    /// The verifier is deterministic across runs.
    #[test]
    fn verifier_is_deterministic() {
        let src = "let rec sum n = if n <= 0 then 0 else n + sum (n - 1) in assert (m <= sum m)";
        let a = homc::verify(src, &homc::VerifierOptions::default()).expect("runs");
        let b = homc::verify(src, &homc::VerifierOptions::default()).expect("runs");
        assert_eq!(a.verdict, b.verdict);
        assert_eq!(a.stats.cycles, b.stats.cycles);
        let _ = frontend(src).expect("compiles");
    }
}
