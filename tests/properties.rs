//! Randomized property tests for the core substrates.
//!
//! Self-contained: cases come from a deterministic xorshift generator, so
//! the tests are reproducible and need no external crates (the suite must
//! build and run on an air-gapped CI runner). The default case counts keep
//! the suite fast; build with `--features slow-tests` for deeper sweeps.

use homc_smt::{
    int_sat, interpolate, is_interpolant, rational_sat, Atom, Formula, IntResult, LinExpr,
    RatResult, SatResult, SmtSolver, Var,
};

/// Deterministic xorshift64* generator.
pub struct Rng(u64);

impl Rng {
    pub fn new(seed: u64) -> Rng {
        Rng(seed | 1)
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform in `lo..=hi`.
    pub fn range(&mut self, lo: i128, hi: i128) -> i128 {
        let span = (hi - lo + 1) as u128;
        lo + (self.next_u64() as u128 % span) as i128
    }

    /// Uniform in `0..n`.
    pub fn index(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// Case count, scaled up under the `slow-tests` feature.
fn cases(fast: usize) -> usize {
    if cfg!(feature = "slow-tests") {
        fast * 8
    } else {
        fast
    }
}

const VARS: [&str; 4] = ["x", "y", "z", "w"];

fn gen_linexpr(rng: &mut Rng) -> LinExpr {
    let mut e = LinExpr::constant(rng.range(-10, 10));
    for _ in 0..rng.index(3) {
        e = e + LinExpr::term(rng.range(-5, 5), Var::new(VARS[rng.index(VARS.len())]));
    }
    e
}

fn gen_atom(rng: &mut Rng) -> Atom {
    let a = gen_linexpr(rng);
    let b = gen_linexpr(rng);
    match rng.index(5) {
        0 => Atom::le(a, b),
        1 => Atom::lt(a, b),
        2 => Atom::ge(a, b),
        3 => Atom::gt(a, b),
        _ => Atom::eq(a, b),
    }
}

fn gen_formula(rng: &mut Rng, depth: u32) -> Formula {
    if depth == 0 || rng.index(3) == 0 {
        return Formula::atom(gen_atom(rng));
    }
    match rng.index(3) {
        0 => Formula::and2(gen_formula(rng, depth - 1), gen_formula(rng, depth - 1)),
        1 => Formula::or2(gen_formula(rng, depth - 1), gen_formula(rng, depth - 1)),
        _ => Formula::not(gen_formula(rng, depth - 1)),
    }
}

fn gen_atoms(rng: &mut Rng) -> Vec<Atom> {
    (0..1 + rng.index(5)).map(|_| gen_atom(rng)).collect()
}

/// A model returned by the conjunction solver satisfies every atom.
#[test]
fn int_sat_models_are_models() {
    let mut rng = Rng::new(0xA11CE);
    for _ in 0..cases(128) {
        let atoms = gen_atoms(&mut rng);
        if let IntResult::Sat(m) = int_sat(&atoms, 32) {
            let env = |v: &Var| m.get(v).copied().or(Some(0));
            for a in &atoms {
                assert_eq!(a.eval(&env), Some(true), "violated {a}");
            }
        }
    }
}

/// Unsat certificates check out (Farkas combination sums to a positive
/// constant).
#[test]
fn farkas_certificates_verify() {
    let mut rng = Rng::new(0xFA12CA5);
    for _ in 0..cases(128) {
        let atoms = gen_atoms(&mut rng);
        if let RatResult::Unsat(cert) = rational_sat(&atoms) {
            assert!(homc_smt::check_certificate(&atoms, &cert));
        }
    }
}

/// The solver agrees with brute-force evaluation on a small grid: if some
/// grid point satisfies the formula, the solver must say Sat.
#[test]
fn solver_not_wrongly_unsat() {
    let mut rng = Rng::new(0x50156E);
    let solver = SmtSolver::new();
    for _ in 0..cases(128) {
        let f = gen_formula(&mut rng, 2);
        let verdict = solver.check(&f);
        let mut some_model = false;
        'grid: for x in -3i128..=3 {
            for y in -3i128..=3 {
                for z in -3i128..=3 {
                    let ints = |v: &Var| {
                        Some(match v.name() {
                            "x" => x,
                            "y" => y,
                            "z" => z,
                            _ => 0,
                        })
                    };
                    if f.eval(&ints, &|_| Some(false)) == Some(true) {
                        some_model = true;
                        break 'grid;
                    }
                }
            }
        }
        if some_model {
            assert!(
                !matches!(verdict, SatResult::Unsat),
                "grid model exists but solver says Unsat for {f}"
            );
        }
    }
}

/// Sat verdicts come with genuine models.
#[test]
fn solver_models_evaluate_true() {
    let mut rng = Rng::new(0x5A7);
    let solver = SmtSolver::new();
    for _ in 0..cases(128) {
        let f = gen_formula(&mut rng, 2);
        if let SatResult::Sat(m) = solver.check(&f) {
            assert!(m.eval(&f), "returned model falsifies {f}");
        }
    }
}

/// Interpolants satisfy all three defining properties whenever the
/// procedure succeeds.
#[test]
fn interpolants_are_interpolants() {
    let mut rng = Rng::new(0x1A7E);
    let solver = SmtSolver::new();
    for _ in 0..cases(128) {
        let a = gen_formula(&mut rng, 1);
        let b = gen_formula(&mut rng, 1);
        if matches!(
            solver.check(&Formula::and2(a.clone(), b.clone())),
            SatResult::Unsat
        ) {
            if let Ok(i) = interpolate(&a, &b) {
                assert!(
                    is_interpolant(&a, &b, &i),
                    "bad interpolant {i} for A={a} B={b}"
                );
            }
        }
    }
}

/// NNF preserves meaning.
#[test]
fn nnf_preserves_semantics() {
    let mut rng = Rng::new(0x22F);
    for _ in 0..cases(128) {
        let f = gen_formula(&mut rng, 2);
        let x = rng.range(-3, 3);
        let y = rng.range(-3, 3);
        let ints = |v: &Var| {
            Some(match v.name() {
                "x" => x,
                "y" => y,
                _ => 0,
            })
        };
        let bools = |_: &Var| Some(false);
        assert_eq!(f.eval(&ints, &bools), f.nnf().eval(&ints, &bools));
    }
}

mod frontend_props {
    use super::{cases, Rng};
    use homc_lang::ast::{BinOp, SurfaceExpr};
    use homc_lang::eval::{run, Label, Outcome, ScriptDriver};
    use homc_lang::frontend;

    /// Small arithmetic expressions over constants and a free `n`.
    fn gen_int_expr(rng: &mut Rng, depth: u32) -> SurfaceExpr {
        if depth == 0 || rng.index(3) == 0 {
            return if rng.index(2) == 0 {
                SurfaceExpr::Int(rng.range(-9, 9) as i64)
            } else {
                SurfaceExpr::Var("n".into())
            };
        }
        let op = [BinOp::Add, BinOp::Sub, BinOp::Mul][rng.index(3)];
        SurfaceExpr::BinOp(
            op,
            Box::new(gen_int_expr(rng, depth - 1)),
            Box::new(gen_int_expr(rng, depth - 1)),
        )
    }

    /// `if a ⋈ b then assert (a ⋈ b) else ()` — always safe as written, but
    /// the abstraction has to prove it.
    fn gen_program(rng: &mut Rng) -> SurfaceExpr {
        let a = gen_int_expr(rng, 2);
        let b = gen_int_expr(rng, 2);
        let op = [BinOp::Le, BinOp::Lt, BinOp::Ge, BinOp::Eq][rng.index(4)];
        SurfaceExpr::If(
            Box::new(SurfaceExpr::BinOp(
                op,
                Box::new(a.clone()),
                Box::new(b.clone()),
            )),
            Box::new(SurfaceExpr::Assert(Box::new(SurfaceExpr::BinOp(
                op,
                Box::new(a),
                Box::new(b),
            )))),
            Box::new(SurfaceExpr::Unit),
        )
    }

    fn schedule(bits: u8) -> Vec<Label> {
        (0..4)
            .map(|i| {
                if (bits >> i) & 1 == 1 {
                    Label::One
                } else {
                    Label::Zero
                }
            })
            .collect()
    }

    /// The front end round-trips: elaborated and CPS kernels type-check and
    /// agree with each other on failure under random schedules.
    #[test]
    fn cps_preserves_failure() {
        let mut rng = Rng::new(0xC125);
        for _ in 0..cases(48) {
            let e = gen_program(&mut rng);
            let n = rng.range(-4, 4) as i64;
            let bits = (rng.next_u64() % 16) as u8;
            let Ok(typed) = homc_lang::types::infer(&e) else {
                continue;
            };
            let Ok(direct) = homc_lang::elaborate::elaborate(&typed) else {
                continue;
            };
            assert!(direct.check().is_ok());
            let cps = homc_lang::cps::cps_transform(&direct);
            assert!(cps.check().is_ok());
            assert!(cps.is_cps_normal());
            let labels = schedule(bits);
            let mut d1 = ScriptDriver::new(labels.clone(), vec![n]);
            let mut d2 = ScriptDriver::new(labels, vec![n]);
            let (o1, t1) = run(&direct, &mut d1, 100_000);
            let (o2, t2) = run(&cps, &mut d2, 100_000);
            assert_eq!(o1.is_fail(), o2.is_fail());
            assert_eq!(t1, t2);
        }
    }

    /// End-to-end soundness fuzzing: whenever the verifier says Safe, no
    /// concrete schedule reaches fail.
    #[test]
    fn verifier_safe_implies_no_concrete_failure() {
        let mut rng = Rng::new(0x5AFE);
        for _ in 0..cases(24) {
            let e = gen_program(&mut rng);
            let Ok(typed) = homc_lang::types::infer(&e) else {
                continue;
            };
            let Ok(direct) = homc_lang::elaborate::elaborate(&typed) else {
                continue;
            };
            let cps = homc_lang::cps::cps_transform(&direct);
            let compiled = homc_lang::Compiled {
                size: 0,
                order: direct.order(),
                direct,
                cps,
            };
            let Ok(out) = homc::verify_compiled(&compiled, &homc::VerifierOptions::default())
            else {
                continue;
            };
            if out.verdict.is_safe() {
                for n in -4i64..=4 {
                    for bits in 0u8..16 {
                        let mut d = ScriptDriver::new(schedule(bits), vec![n]);
                        let (o, _) = run(&compiled.cps, &mut d, 100_000);
                        assert!(
                            !matches!(o, Outcome::Fail),
                            "verifier said Safe but n={n}, bits={bits:#b} fails"
                        );
                    }
                }
            }
        }
    }

    /// The verifier is deterministic across runs.
    #[test]
    fn verifier_is_deterministic() {
        let src = "let rec sum n = if n <= 0 then 0 else n + sum (n - 1) in assert (m <= sum m)";
        let a = homc::verify(src, &homc::VerifierOptions::default()).expect("runs");
        let b = homc::verify(src, &homc::VerifierOptions::default()).expect("runs");
        assert_eq!(a.verdict, b.verdict);
        assert_eq!(a.stats.cycles, b.stats.cycles);
        let _ = frontend(src).expect("compiles");
    }
}
