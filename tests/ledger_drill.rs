//! Ledger durability drill (mirrors `diskcache_drill.rs` for the run
//! ledger): flip or truncate bytes in a run file and assert that
//!
//! * the damage is **detected** — the load report counts a quarantined
//!   file and the `ledger_quarantine` counter is nonzero,
//! * a damaged run file is rejected **whole** (a torn tail can never feed
//!   half a run's records into a trend median), and
//! * the trend verdict is never *wrong*: on a clean history, corruption may
//!   cost history but must keep `regress` clean — it must never
//!   manufacture a breach or a flip.
//!
//! Plus the `homc regress` exit-code goldens: 0 clean, 1 latency breach,
//! 2 verdict flip, 3 incompatible ledger — driven through the real binary.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

use homc::{regress, stable_hash64, Counter, Ledger, Metrics, RunRecord, TrendOptions};

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("homc-ledger-drill-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    d
}

fn homc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_homc"))
}

/// One synthetic settled run: both suite programs at steady latency.
fn steady_run() -> Vec<RunRecord> {
    ["sum", "mc91"]
        .iter()
        .map(|name| RunRecord {
            program: (*name).to_string(),
            verdict: "safe".to_string(),
            ok: true,
            wall_us: 1_000_000,
            total_us: 900_000,
            ..RunRecord::default()
        })
        .collect()
}

/// Appends `n` steady runs to a fresh ledger at `dir`.
fn seed_history(dir: &Path, n: usize) -> Ledger {
    let ledger = Ledger::new(dir);
    for _ in 0..n {
        let mut records = steady_run();
        ledger.append("drill", &mut records).expect("append");
    }
    ledger
}

#[test]
fn byte_flips_quarantine_whole_files_and_never_fake_a_regression() {
    let base = tmpdir("flip");
    seed_history(&base.join("pristine"), 3);
    let newest = base.join("pristine").join("run-000003.led");
    let bytes = fs::read(&newest).expect("run file readable");
    let header_len = bytes.iter().position(|&b| b == b'\n').expect("header") + 1;
    // One offset per frame class: header magic, length field, checksum
    // (record offset +9), payload (+26) — and a payload byte of the
    // *second* record, to prove rejection is whole-file, not per-record.
    let second_record = bytes[header_len..]
        .iter()
        .position(|&b| b == b'\n')
        .expect("first record ends")
        + header_len
        + 1;
    let classes = [
        ("header", 0),
        ("length", header_len),
        ("checksum", header_len + 9),
        ("payload", header_len + 26),
        ("second-record", second_record + 26),
    ];
    for (class, offset) in classes {
        assert!(offset < bytes.len(), "{class}: offset {offset} in range");
        let dir = base.join(class);
        seed_history(&dir, 3);
        let target = dir.join("run-000003.led");
        let mut corrupt = bytes.clone();
        corrupt[offset] ^= 0x01;
        fs::write(&target, &corrupt).unwrap();

        let metrics = Metrics::new(false);
        let (records, load) = Ledger::new(&dir)
            .with_metrics(metrics.clone())
            .load()
            .expect("load never hard-fails on content");
        assert!(
            load.quarantined > 0 || load.stale > 0,
            "{class}: the flip at offset {offset} must be detected, got {load}"
        );
        if load.stale == 0 {
            assert!(
                metrics.snapshot().counter(Counter::LedgerQuarantine) > 0,
                "{class}: quarantine counter must be nonzero"
            );
            assert!(
                !target.exists(),
                "{class}: damaged file must be moved aside"
            );
        }
        // Whole-file rejection: either all of run 3's records survive (the
        // flip hit a non-loaded region... impossible here) or none do.
        let run3 = records.iter().filter(|r| r.run == 3).count();
        assert_eq!(run3, 0, "{class}: damaged run must contribute 0 records");
        // Two pristine steady runs remain: the trend verdict stays clean.
        let report = regress(&records, &TrendOptions::default());
        assert_eq!(
            report.exit_code(),
            0,
            "{class}: corruption manufactured a verdict: {}",
            report.text
        );
    }
    let _ = fs::remove_dir_all(&base);
}

#[test]
fn truncation_rejects_the_whole_run_file() {
    let base = tmpdir("trunc");
    seed_history(&base, 3);
    let newest = base.join("run-000003.led");
    let bytes = fs::read(&newest).expect("run file readable");
    // Cut mid-way through the final record (a torn write at power loss).
    for cut in [bytes.len() - 1, bytes.len() - 10, bytes.len() / 2] {
        fs::write(&newest, &bytes[..cut]).unwrap();
        let (records, load) = Ledger::new(&base).load().expect("load");
        assert!(load.quarantined > 0, "cut at {cut}: {load}");
        assert_eq!(
            records.iter().filter(|r| r.run == 3).count(),
            0,
            "cut at {cut}: torn run must contribute no records"
        );
        let report = regress(&records, &TrendOptions::default());
        assert_eq!(report.exit_code(), 0, "cut at {cut}: {}", report.text);
        // Re-seed run 3 for the next cut (quarantine renamed it away).
        let _ = fs::remove_file(base.join("run-000003.led.quarantined"));
        fs::write(&newest, &bytes).unwrap();
    }
    let _ = fs::remove_dir_all(&base);
}

// ---------------------------------------------------------------------------
// `homc regress` exit-code goldens through the real binary.

fn regress_on(dir: &Path) -> (i32, String) {
    let out = homc()
        .arg("regress")
        .arg(dir)
        .output()
        .expect("homc regress runs");
    (
        out.status.code().expect("exit code"),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

#[test]
fn regress_exit_codes_are_golden() {
    let base = tmpdir("golden");

    // 0: steady history, newest run at baseline latency.
    let ledger = seed_history(&base, 3);
    let (code, text) = regress_on(&base);
    assert_eq!(code, 0, "{text}");
    assert!(text.contains("ok"), "{text}");
    // Determinism: the same ledger yields byte-identical output twice.
    assert_eq!(regress_on(&base), (code, text.clone()));

    // 1: a 2× wall-time slowdown of a single program breaches the gate
    // (2.0 > 1.5× median + 100 ms slack).
    let mut slow = steady_run();
    slow[0].wall_us = 2_000_000;
    ledger.append("drill", &mut slow).expect("append slow run");
    let (code, text) = regress_on(&base);
    assert_eq!(code, 1, "{text}");
    assert!(text.contains("sum"), "{text}");

    // 2: a verdict flip on the newest run outranks the breach.
    let mut flip = steady_run();
    flip[1].verdict = "unsafe".to_string();
    flip[1].ok = false;
    ledger.append("drill", &mut flip).expect("append flip run");
    let (code, text) = regress_on(&base);
    assert_eq!(code, 2, "{text}");
    assert!(text.contains("mc91"), "{text}");

    let _ = fs::remove_dir_all(&base);
}

#[test]
fn regress_exits_3_on_incompatible_record_schema() {
    let base = tmpdir("foreign");
    seed_history(&base, 2);
    // Hand-compose a run file from a future generation: correct container
    // header and checksummed framing, but a record schema this build does
    // not speak. The loader keeps it (history is not rebuildable); the
    // trend layer must refuse to interpret it.
    let payload = "{\"schema\": 999, \"run\": 3, \"kind\": \"drill\", \
                   \"program\": \"sum\", \"verdict\": \"safe\", \"ok\": 1}";
    let file = format!(
        "homc-ledger v1\n{:08x} {:016x} {payload}\n",
        payload.len(),
        stable_hash64(payload)
    );
    fs::write(base.join("run-000003.led"), file).unwrap();
    let (code, text) = regress_on(&base);
    assert_eq!(code, 3, "{text}");
    assert!(text.contains("schema"), "{text}");
    let _ = fs::remove_dir_all(&base);
}

#[test]
fn insufficient_history_is_clean_not_an_error() {
    let base = tmpdir("short");
    seed_history(&base, 1);
    let (code, text) = regress_on(&base);
    assert_eq!(code, 0, "{text}");
    assert!(text.contains("insufficient history"), "{text}");
    let _ = fs::remove_dir_all(&base);
}
