//! Observability-layer tests: the golden logical trace, trace determinism,
//! the tracing-on/off differential, schema validation, and structured fault
//! events under `--inject`.

use homc::{
    suite, validate_trace, verify, Fault, FaultPlan, JsonValue, Tracer, Verdict, VerifierOptions,
};

/// Verifies `src` with an in-memory tracer and returns the trace text.
fn traced_run(src: &str, logical: bool, faults: FaultPlan) -> (Verdict, String) {
    let tracer = Tracer::memory(logical);
    let opts = VerifierOptions {
        tracer: tracer.clone(),
        faults,
        ..VerifierOptions::default()
    };
    let out = verify(src, &opts).expect("no hard error");
    (out.verdict, tracer.snapshot().expect("memory sink"))
}

/// The exact logical-clock trace of the simplest unsafe program. Every
/// event is deterministic under the logical clock (sequence numbers for
/// timestamps, zeroed durations, sequential abstraction), so this is a
/// byte-level regression test for the entire event vocabulary: renaming a
/// field, reordering emission, or changing derivation order breaks it.
const GOLDEN: &str = include_str!("golden/assert_n_pos.trace.jsonl");

#[test]
fn golden_logical_trace_for_simplest_unsafe() {
    let (verdict, got) = traced_run("assert (n > 0)", true, FaultPlan::none());
    assert!(verdict.is_unsafe());
    validate_trace(&got).expect("golden run must be schema-valid");
    if got != GOLDEN {
        // Dump the actual bytes for regeneration before failing legibly.
        let _ = std::fs::write("/tmp/assert_n_pos.trace.actual.jsonl", &got);
        assert_eq!(
            got, GOLDEN,
            "logical trace drifted (actual written to \
             /tmp/assert_n_pos.trace.actual.jsonl)"
        );
    }
}

#[test]
fn logical_trace_is_byte_deterministic() {
    let p = suite::find("intro3").expect("present");
    let (v1, t1) = traced_run(p.source, true, FaultPlan::none());
    let (v2, t2) = traced_run(p.source, true, FaultPlan::none());
    assert_eq!(v1, v2);
    assert_eq!(t1, t2, "two logical-clock runs must be byte-identical");
    validate_trace(&t1).expect("schema-valid");
}

/// Tracing must be an observer: same verdicts, same effort counters,
/// whether or not a tracer is attached. Both runs force `threads = 1` —
/// with parallel abstraction two workers can race to solve the same cached
/// query, so cache hit/miss totals are only comparable sequentially.
#[test]
fn tracing_on_off_differential_across_suite() {
    for p in suite::SUITE {
        let mut opts_off = VerifierOptions::default();
        opts_off.abs.threads = 1;
        let tracer = Tracer::memory(false);
        let mut opts_on = VerifierOptions {
            tracer: tracer.clone(),
            ..VerifierOptions::default()
        };
        opts_on.abs.threads = 1;

        let off = verify(p.source, &opts_off).expect("no hard error");
        let on = verify(p.source, &opts_on).expect("no hard error");

        assert_eq!(off.verdict, on.verdict, "{}: verdict changed", p.name);
        assert_eq!(off.stats.cycles, on.stats.cycles, "{}: cycles", p.name);
        assert_eq!(
            off.stats.predicates, on.stats.predicates,
            "{}: predicates",
            p.name
        );
        assert_eq!(
            off.stats.final_hbp_size, on.stats.final_hbp_size,
            "{}: hbp size",
            p.name
        );
        assert_eq!(
            off.stats.smt_queries, on.stats.smt_queries,
            "{}: smt queries",
            p.name
        );
        assert_eq!(
            (off.stats.cache_hits, off.stats.cache_misses),
            (on.stats.cache_hits, on.stats.cache_misses),
            "{}: cache counters",
            p.name
        );
        assert_eq!(
            (off.stats.worklist_pops, off.stats.rescans_avoided),
            (on.stats.worklist_pops, on.stats.rescans_avoided),
            "{}: worklist counters",
            p.name
        );

        // Every traced line is schema-valid, and the trace carries exactly
        // one `iter` record per CEGAR iteration.
        let trace = tracer.snapshot().expect("memory sink");
        let events = validate_trace(&trace)
            .unwrap_or_else(|(line, e)| panic!("{}: line {line}: {e}", p.name));
        assert!(events > 0, "{}: empty trace", p.name);
        let iters = trace
            .lines()
            .filter(|l| {
                homc::parse_json(l)
                    .ok()
                    .and_then(|v| v.get("ev").and_then(JsonValue::as_str).map(String::from))
                    .as_deref()
                    == Some("iter")
            })
            .count();
        assert_eq!(
            iters, on.stats.cycles,
            "{}: one iter record per CEGAR iteration",
            p.name
        );
    }
}

/// `--inject` fault plans must surface as structured `fault` events with
/// the right phase and kind, while the run degrades to `unknown`.
#[test]
fn injected_faults_emit_structured_events() {
    let intro1 = suite::find("intro1").expect("present").source;
    for (spec, phase, kind) in [
        ("mc:3:panic", "mc", "panic"),
        ("interp:2:error", "interp", "error"),
        ("abs:5:panic", "abs", "panic"),
    ] {
        let mut faults = FaultPlan::none();
        faults.push(spec.parse::<Fault>().expect("valid fault spec"));
        let (verdict, trace) = traced_run(intro1, true, faults);
        assert!(
            matches!(verdict, Verdict::Unknown { .. }),
            "{spec}: expected unknown, got {verdict}"
        );
        validate_trace(&trace).expect("schema-valid");
        let fault_line = trace
            .lines()
            .find(|l| l.contains("\"ev\":\"fault\""))
            .unwrap_or_else(|| panic!("{spec}: no fault event in:\n{trace}"));
        let v = homc::parse_json(fault_line).expect("parses");
        assert_eq!(
            v.get("phase").and_then(JsonValue::as_str),
            Some(phase),
            "{spec}"
        );
        assert_eq!(
            v.get("kind").and_then(JsonValue::as_str),
            Some(kind),
            "{spec}"
        );
    }
}

/// A disabled tracer snapshots to nothing and a wall-clock memory tracer
/// reports real durations (the `iter` record's `dur_us` is non-zero for a
/// multi-phase run) — the two clock modes are genuinely different.
#[test]
fn wall_clock_records_durations_logical_zeroes_them() {
    let intro1 = suite::find("intro1").expect("present").source;
    let (_, wall) = traced_run(intro1, false, FaultPlan::none());
    let (_, logical) = traced_run(intro1, true, FaultPlan::none());
    let dur_of = |trace: &str| -> Vec<i128> {
        trace
            .lines()
            .filter_map(|l| homc::parse_json(l).ok())
            .filter(|v| v.get("ev").and_then(JsonValue::as_str) == Some("iter"))
            .filter_map(|v| v.get("dur_us").and_then(JsonValue::as_num))
            .collect()
    };
    assert!(
        dur_of(&wall).iter().any(|&d| d > 0),
        "wall-clock iter durations must be measured"
    );
    assert!(
        dur_of(&logical).iter().all(|&d| d == 0),
        "logical-clock durations must be zeroed"
    );
}
