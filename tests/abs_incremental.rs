//! Incremental-abstraction differential tests (PR 7).
//!
//! The two optimisations under test are both claimed to be *semantically
//! invisible*: the per-definition transition memo reuses byte-identical
//! output, and the model-guided implicant enumeration prunes exactly the
//! branches the exhaustive engine prunes. These tests pin the claims down:
//!
//! * a 1k random-formula differential between the model-guided and
//!   exhaustive cube enumerations (same cube sets, never more queries);
//! * byte-identical abstract programs between the two enumeration modes on
//!   the pinned program set (with real predicates installed);
//! * byte-identical abstract programs from the incremental path across a
//!   simulated refinement step, with verbatim reuse actually observed;
//! * identical verdicts across the whole Table 1 suite between the new
//!   engine (memo + model-guided) and the old one (eager + exhaustive);
//! * `abs_defs_reused > 0` on a multi-iteration CEGAR run.

use std::sync::Arc;

use homc::{suite, verify, Verdict, VerifierOptions};
use homc_abs::abstract_prog::enumerate_cubes_for_tests;
use homc_abs::{
    abstract_program_incremental, abstract_program_metered, AbsEnv, AbsOptions, AbsTy, EnumMode,
    Predicate, TransitionMemo,
};
use homc_lang::frontend;
use homc_lang::types::SimpleTy;
use homc_metrics::Metrics;
use homc_smt::{Atom, Formula, LinExpr, QueryCache, Var};
use homc_trace::Tracer;

/// Deterministic xorshift64* generator (same idiom as `properties.rs`).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn int(&mut self, lo: i128, hi: i128) -> i128 {
        lo + (self.below((hi - lo + 1) as u64) as i128)
    }
}

const VARS: [&str; 3] = ["x", "y", "z"];

fn rand_expr(rng: &mut Rng) -> LinExpr {
    let mut e = LinExpr::constant(rng.int(-4, 4));
    for _ in 0..=rng.below(2) {
        let v = VARS[rng.below(VARS.len() as u64) as usize];
        e.add_term(rng.int(-2, 2), Var::new(v));
    }
    e
}

fn rand_atom(rng: &mut Rng) -> Formula {
    let a = rand_expr(rng);
    let b = rand_expr(rng);
    Formula::atom(match rng.below(5) {
        0 => Atom::le(a, b),
        1 => Atom::lt(a, b),
        2 => Atom::ge(a, b),
        3 => Atom::gt(a, b),
        _ => Atom::eq(a, b),
    })
}

fn rand_formula(rng: &mut Rng, depth: u32) -> Formula {
    if depth == 0 || rng.below(3) == 0 {
        return rand_atom(rng);
    }
    match rng.below(3) {
        0 => Formula::and((0..2).map(|_| rand_formula(rng, depth - 1))),
        1 => Formula::or((0..2).map(|_| rand_formula(rng, depth - 1))),
        _ => Formula::not(rand_formula(rng, depth - 1)),
    }
}

/// The 1k-case enumeration differential: for random `base` and literal
/// lists, the model-guided engine must emit exactly the exhaustive cube
/// set — same cubes, same order — while never issuing *more* solver
/// queries. This is the feasible-implicant-cover equivalence the guarded
/// branches are rebuilt from.
#[test]
fn model_guided_enumeration_matches_exhaustive_on_random_formulas() {
    let mut rng = Rng::new(0x1a2b_3c4d_5e6f_7788);
    let mut saved_total = 0usize;
    for case in 0..1000 {
        let base = rand_formula(&mut rng, 2);
        let n = 2 + rng.below(3) as usize;
        let meanings: Vec<Formula> = (0..n).map(|_| rand_formula(&mut rng, 1)).collect();
        let (exh_cubes, exh_queries) =
            enumerate_cubes_for_tests(&base, &meanings, EnumMode::Exhaustive)
                .expect("exhaustive enumeration runs");
        let (mg_cubes, mg_queries) =
            enumerate_cubes_for_tests(&base, &meanings, EnumMode::ModelGuided)
                .expect("model-guided enumeration runs");
        assert_eq!(
            exh_cubes, mg_cubes,
            "case {case}: cube sets diverged (base={base}, meanings={meanings:?})"
        );
        assert!(
            mg_queries <= exh_queries,
            "case {case}: model-guided spent more queries ({mg_queries} > {exh_queries})"
        );
        saved_total += exh_queries - mg_queries;
    }
    assert!(
        saved_total > 0,
        "model guidance never saved a query across 1000 cases"
    );
}

/// The pinned program set for byte-identity checks (shapes exercising
/// recursion, higher-order arguments, coercions, and an unsafe path).
const PROGRAMS: [&str; 4] = [
    "let f x g = g (x + 1) in
     let h y = assert (y > 0) in
     let k n = if n > 0 then f n h else () in
     k m",
    "let f x g = g (x + 1) in
     let h z y = assert (y > z) in
     let k n = if n >= 0 then f n (h n) else () in
     k m",
    "let lock st = assert (st = 0); 1 in
     let unlock st = assert (st = 1); 0 in
     let rec loop n st = if n <= 0 then st else loop (n - 1) (unlock (lock st)) in
     assert (loop n 0 = 0)",
    "let rec sum n = if n <= 0 then 0 else n + sum (n - 1) in
     assert (m <= sum m)",
];

/// Installs `λν.ν > 0` on every integer position so the abstraction issues
/// real SMT queries (an empty environment would make the comparison
/// trivial).
fn with_gt0(t: &AbsTy) -> AbsTy {
    let nu = Var::new("nu");
    let gt0 = Predicate::new(
        nu.clone(),
        Formula::atom(Atom::gt(LinExpr::var(nu), LinExpr::constant(0))),
    );
    match t {
        AbsTy::Base(SimpleTy::Int, _) => AbsTy::int(vec![gt0]),
        AbsTy::Base(_, _) => t.clone(),
        AbsTy::Fun(x, a, b) => AbsTy::fun(x.clone(), with_gt0(a), with_gt0(b)),
    }
}

fn gt0_env(src: &str) -> (homc_lang::Compiled, AbsEnv) {
    let compiled = frontend(src).expect("compiles");
    let mut env = AbsEnv::initial(&compiled.cps);
    for scheme in env.schemes.values_mut() {
        for (_, t) in scheme.iter_mut() {
            *t = with_gt0(t);
        }
    }
    (compiled, env)
}

fn render(src: &str, mode: EnumMode) -> String {
    let (compiled, env) = gt0_env(src);
    let opts = AbsOptions {
        enum_mode: mode,
        ..AbsOptions::default()
    };
    let (bp, _) = abstract_program_metered(
        &compiled.cps,
        &env,
        &opts,
        None,
        None,
        &Tracer::disabled(),
        &Metrics::disabled(),
    )
    .expect("abstracts");
    bp.to_string()
}

/// Model-guided enumeration must produce the byte-identical abstract
/// program — guards, value choices, and coercion wrappers included.
#[test]
fn abstract_programs_byte_identical_across_enum_modes() {
    for (i, src) in PROGRAMS.iter().enumerate() {
        assert_eq!(
            render(src, EnumMode::Exhaustive),
            render(src, EnumMode::ModelGuided),
            "program {i}: enumeration modes produced different abstract programs"
        );
    }
}

/// The transition memo across a simulated refinement step: a second
/// incremental abstraction under a partially-changed environment must (a)
/// actually reuse the untouched definitions and (b) still produce the
/// byte-identical program an eager re-abstraction would.
#[test]
fn incremental_reuse_is_byte_identical_across_refinement() {
    for (i, src) in PROGRAMS.iter().enumerate() {
        let compiled = frontend(src).expect("compiles");
        let env0 = AbsEnv::initial(&compiled.cps);
        // Refine exactly one scheme: the first (in BTreeMap order) whose
        // types actually change under the new predicate, so at least one
        // cone fingerprint moves.
        let mut env1 = env0.clone();
        let target = env1
            .schemes
            .iter()
            .find(|(_, scheme)| scheme.iter().any(|(_, t)| with_gt0(t) != *t))
            .map(|(f, _)| f.clone())
            .expect("some scheme has an integer position");
        for (_, t) in env1.schemes.get_mut(&target).expect("target scheme") {
            *t = with_gt0(t);
        }
        let opts = AbsOptions::default();
        let cache = Some(Arc::new(QueryCache::new()));
        let mut memo = TransitionMemo::new();
        let run = |env: &AbsEnv, memo: &mut TransitionMemo| {
            abstract_program_incremental(
                &compiled.cps,
                env,
                &opts,
                None,
                cache.clone(),
                &Tracer::disabled(),
                &Metrics::disabled(),
                memo,
            )
            .expect("abstracts")
        };
        let eager = |env: &AbsEnv| {
            abstract_program_metered(
                &compiled.cps,
                env,
                &opts,
                None,
                cache.clone(),
                &Tracer::disabled(),
                &Metrics::disabled(),
            )
            .expect("abstracts")
        };

        let (bp0, s0) = run(&env0, &mut memo);
        assert_eq!(
            s0.defs_reused, 0,
            "program {i}: nothing to reuse on first build"
        );
        assert_eq!(
            bp0.to_string(),
            eager(&env0).0.to_string(),
            "program {i}: incremental first build diverged from eager"
        );

        // Unchanged environment: everything must be reused, byte-identically.
        let (bp_same, s_same) = run(&env0, &mut memo);
        assert_eq!(
            s_same.defs_reused,
            compiled.cps.defs.len() + 1,
            "program {i}: full reuse expected under an unchanged environment"
        );
        assert_eq!(s_same.defs_rebuilt, 0, "program {i}: nothing changed");
        assert_eq!(
            bp_same.to_string(),
            bp0.to_string(),
            "program {i}: reuse drifted"
        );

        // Refined environment: the touched cone rebuilds, the rest is
        // reused, and the result matches an eager build from scratch.
        let (bp1, s1) = run(&env1, &mut memo);
        assert!(
            s1.defs_reused > 0,
            "program {i}: refinement of one scheme must leave something reusable"
        );
        assert!(
            s1.defs_rebuilt > 0,
            "program {i}: the refined definition must rebuild"
        );
        assert_eq!(
            bp1.to_string(),
            eager(&env1).0.to_string(),
            "program {i}: incremental rebuild after refinement diverged from eager"
        );
    }
}

/// Runs one suite program under the given engine configuration.
fn suite_verdict(src: &str, incremental: bool, mode: EnumMode) -> Verdict {
    let mut opts = VerifierOptions {
        incremental_abs: incremental,
        ..VerifierOptions::default()
    };
    opts.abs.enum_mode = mode;
    verify(src, &opts).expect("no hard error").verdict
}

/// The whole Table 1 suite: the new engine (memo + model-guided) must agree
/// with the old engine (eager + exhaustive) on every verdict.
#[test]
fn suite_verdicts_identical_between_engines() {
    for p in suite::SUITE {
        let new = suite_verdict(p.source, true, EnumMode::ModelGuided);
        let old = suite_verdict(p.source, false, EnumMode::Exhaustive);
        assert_eq!(new, old, "{}: engines disagree", p.name);
    }
}

/// On a multi-iteration program, iterations after the first must reuse the
/// definitions refinement did not touch: `abs_defs_reused > 0`, with the
/// expected (safe) verdict intact. l-zipmap runs 3 CEGAR cycles.
#[test]
fn multi_iteration_run_reuses_memoized_definitions() {
    let p = suite::SUITE
        .iter()
        .find(|p| p.name == "l-zipmap")
        .expect("l-zipmap in suite");
    let out = verify(p.source, &VerifierOptions::default()).expect("no hard error");
    assert!(out.verdict.is_safe(), "l-zipmap must verify safe");
    assert!(
        out.stats.cycles >= 3,
        "l-zipmap must take multiple CEGAR cycles"
    );
    assert!(
        out.stats.abs_defs_reused > 0,
        "later iterations must reuse memoized definitions (got 0 reuses over {} cycles)",
        out.stats.cycles
    );
    assert!(
        out.stats.abs_queries_saved > 0,
        "memo reuse and model coverage must save abstraction queries"
    );
}
