//! Integration test: every Table 1 program gets the paper's verdict.
//!
//! This is the headline reproduction check — each of the 28 benchmark
//! programs must verify (safe), be rejected with a genuine counterexample
//! (unsafe), or — for `apply` — at least never be rejected (the paper's
//! tool diverges; ours verifies it thanks to systematic ghost parameters).

use homc::{suite, verify, Expected, Verdict, VerifierOptions};

fn check(program: &suite::SuiteProgram) {
    let out = verify(program.source, &VerifierOptions::default())
        .unwrap_or_else(|e| panic!("{}: hard error {e}", program.name));
    match program.expected {
        Expected::Safe => assert!(
            out.verdict.is_safe(),
            "{} must be safe, got {}",
            program.name,
            out.verdict
        ),
        Expected::Unsafe => match &out.verdict {
            Verdict::Unsafe { witness, path } => {
                // The witness must be a *real* counterexample: replay it
                // concretely and observe the failure.
                let compiled = homc_lang::frontend(program.source).expect("compiles");
                let mut driver = homc_lang::eval::ScriptDriver::new(path.clone(), witness.to_vec());
                let (outcome, _) = homc_lang::eval::run(&compiled.cps, &mut driver, 1_000_000);
                assert!(
                    outcome.is_fail(),
                    "{}: witness {witness:?} with path {path:?} does not replay to fail \
                     (got {outcome:?})",
                    program.name
                );
            }
            other => panic!("{} must be unsafe, got {other}", program.name),
        },
        Expected::Diverges => assert!(
            !out.verdict.is_unsafe(),
            "{} must not be rejected, got {}",
            program.name,
            out.verdict
        ),
    }
    // The order metric must match the paper's column O.
    assert_eq!(
        out.order, program.paper_order,
        "{}: order mismatch",
        program.name
    );
}

macro_rules! suite_test {
    ($($name:ident),* $(,)?) => {
        $(
            #[test]
            fn $name() {
                let key = stringify!($name).replace('_', "-");
                let p = suite::find(&key)
                    .or_else(|| suite::find(&key.replace('-', "")))
                    .unwrap_or_else(|| panic!("no suite program {key}"));
                check(p);
            }
        )*
    };
}

suite_test!(
    intro1, intro2, intro3, sum, mult, max, mc91, ack, repeat, fhnhn, hrec, neg, apply, hors,
);

#[test]
fn a_prod() {
    check(suite::find("a-prod").expect("present"));
}
#[test]
fn a_cppr() {
    check(suite::find("a-cppr").expect("present"));
}
#[test]
fn a_init() {
    check(suite::find("a-init").expect("present"));
}
#[test]
fn a_max() {
    check(suite::find("a-max").expect("present"));
}
#[test]
fn l_zipunzip() {
    check(suite::find("l-zipunzip").expect("present"));
}
#[test]
fn l_zipmap() {
    check(suite::find("l-zipmap").expect("present"));
}
#[test]
fn e_simple() {
    check(suite::find("e-simple").expect("present"));
}
#[test]
fn e_fact() {
    check(suite::find("e-fact").expect("present"));
}
#[test]
fn r_lock() {
    check(suite::find("r-lock").expect("present"));
}
#[test]
fn r_file() {
    check(suite::find("r-file").expect("present"));
}
#[test]
fn sum_e() {
    check(suite::find("sum-e").expect("present"));
}
#[test]
fn mult_e() {
    check(suite::find("mult-e").expect("present"));
}
#[test]
fn mc91_e() {
    check(suite::find("mc91-e").expect("present"));
}
#[test]
fn repeat_e() {
    check(suite::find("repeat-e").expect("present"));
}
#[test]
fn a_max_e() {
    check(suite::find("a-max-e").expect("present"));
}
#[test]
fn r_lock_e() {
    check(suite::find("r-lock-e").expect("present"));
}
