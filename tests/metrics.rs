//! Metrics-layer tests: the metrics-on/off differential across the whole
//! suite (identical verdicts, byte-identical logical traces), the folded
//! self-profile's structural invariants, and CLI-level exit-code goldens
//! for `homc trace-diff` / `homc bench-diff`.

use std::process::Command;

use homc::{
    fold_trace, suite, validate_folded, verify, Counter, Hist, Metrics, Tracer, VerifierOptions,
};

/// Verifies `src` under a logical-clock memory tracer with the given
/// metrics handle and returns `(verdict, trace)`.
fn logical_run(src: &str, metrics: Metrics) -> (homc::Verdict, String) {
    let tracer = Tracer::memory(true);
    let mut opts = VerifierOptions {
        tracer: tracer.clone(),
        metrics,
        ..VerifierOptions::default()
    };
    opts.abs.threads = 1;
    let out = verify(src, &opts).expect("no hard error");
    (out.verdict, tracer.snapshot().expect("memory sink"))
}

/// Metrics must be a pure observer: attaching an enabled registry to every
/// suite program changes neither the verdict nor a single byte of the
/// logical trace. This is the load-bearing guarantee that lets `--stats`
/// ride along with golden-trace comparisons.
#[test]
fn metrics_on_off_differential_across_suite() {
    for p in suite::SUITE {
        let (v_off, t_off) = logical_run(p.source, Metrics::disabled());
        let (v_on, t_on) = logical_run(p.source, Metrics::new(true));
        assert_eq!(v_off, v_on, "{}: verdict changed under metrics", p.name);
        assert_eq!(
            t_off, t_on,
            "{}: logical trace not byte-identical under metrics",
            p.name
        );
    }
}

/// The golden logical trace from the tracing layer must survive metrics
/// collection unchanged — byte-for-byte.
#[test]
fn golden_trace_unchanged_with_metrics_enabled() {
    const GOLDEN: &str = include_str!("golden/assert_n_pos.trace.jsonl");
    let (verdict, got) = logical_run("assert (n > 0)", Metrics::new(true));
    assert!(verdict.is_unsafe());
    assert_eq!(got, GOLDEN, "metrics perturbed the golden logical trace");
}

/// An enabled registry actually counts: a multi-iteration safe program
/// must record SMT solves, abstraction definitions, model-checking rounds,
/// and per-iteration histogram mass. Under the logical clock, duration
/// histograms stay empty (observe_dur zeroes them) while size histograms
/// fill — the same split the tracer makes.
#[test]
fn enabled_registry_counts_and_logical_zeroes_durations() {
    let p = suite::find("intro1").expect("present");
    let metrics = Metrics::new(true);
    let (_, _) = logical_run(p.source, metrics.clone());
    let snap = metrics.snapshot();
    assert!(
        snap.counter(Counter::SmtSolves) > 0,
        "no SMT solves counted"
    );
    assert!(
        snap.counter(Counter::AbsDefs) > 0,
        "no abstractions counted"
    );
    assert!(snap.counter(Counter::McRounds) > 0, "no MC rounds counted");
    assert!(snap.hist(Hist::HbpRules).count > 0, "empty hbp_rules hist");
    assert!(snap.hist(Hist::IterUs).count > 0, "empty iter hist");
    assert_eq!(
        snap.hist(Hist::IterUs).max,
        0,
        "logical-clock durations must be zeroed"
    );
    // And two enabled runs agree exactly on every deterministic counter.
    let again = Metrics::new(true);
    let (_, _) = logical_run(p.source, again.clone());
    assert_eq!(
        snap.counters,
        again.snapshot().counters,
        "counters must be run-to-run deterministic under the logical clock"
    );
}

/// A wall-clock run's trace folds into a telescoping profile whose folded
/// output round-trips the validator — the structural claims behind
/// `homc profile`.
#[test]
fn folded_profile_telescopes_and_validates() {
    let p = suite::find("intro3").expect("present");
    let tracer = Tracer::memory(false);
    let opts = VerifierOptions {
        tracer: tracer.clone(),
        ..VerifierOptions::default()
    };
    verify(p.source, &opts).expect("no hard error");
    let profile = fold_trace(&tracer.snapshot().expect("memory sink"));
    profile
        .check_telescoping()
        .expect("children fit in parents");
    let folded = profile.folded();
    let stacks = validate_folded(&folded).expect("folded output is well-formed");
    assert!(stacks > 0, "profile produced no stacks:\n{folded}");
}

// ---------------------------------------------------------------------------
// CLI exit-code goldens for the diff subcommands. `CARGO_BIN_EXE_homc` is
// provided because this integration test lives in the crate that builds the
// `homc` binary.

fn homc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_homc"))
}

fn write_tmp(dir: &std::path::Path, name: &str, text: &str) -> String {
    let path = dir.join(name);
    std::fs::write(&path, text).expect("write temp file");
    path.to_string_lossy().into_owned()
}

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("homc-metrics-test-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

const META: &str =
    "  \"meta\": {\"schema\": 2, \"suite\": \"table1\", \"threads\": 4, \"clock\": \"wall\"},\n";

fn bench_doc(meta: &str, total_s: f64, verdict: &str, verdict_ok: bool) -> String {
    format!(
        "{{\n{meta}  \"programs\": [\n    {{\"name\": \"p1\", \"verdict\": {verdict:?}, \
         \"verdict_ok\": {verdict_ok}, \"total_s\": {total_s:.4}, \"smt_queries\": 100}}\n  ],\n  \
         \"totals\": {{\"wall_s\": {total_s:.4}, \"smt_queries\": 100}}\n}}\n"
    )
}

#[test]
fn bench_diff_cli_exit_codes() {
    let dir = tmpdir("bench");
    let base = write_tmp(&dir, "base.json", &bench_doc(META, 1.0, "safe", true));

    // Identical baselines: exit 0.
    let ok = homc()
        .args(["bench-diff", &base, &base])
        .output()
        .expect("runs");
    assert_eq!(
        ok.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&ok.stdout)
    );

    // A 3x wall-time regression breaches the --gate thresholds: exit 1.
    let slow = write_tmp(&dir, "slow.json", &bench_doc(META, 3.0, "safe", true));
    let breach = homc()
        .args(["bench-diff", &base, &slow, "--gate"])
        .output()
        .expect("runs");
    assert_eq!(
        breach.status.code(),
        Some(1),
        "{}",
        String::from_utf8_lossy(&breach.stdout)
    );

    // A verdict flip is a hard error even without --gate: exit 2.
    let flip = write_tmp(&dir, "flip.json", &bench_doc(META, 1.0, "unsafe", false));
    let flipped = homc()
        .args(["bench-diff", &base, &flip])
        .output()
        .expect("runs");
    assert_eq!(
        flipped.status.code(),
        Some(2),
        "{}",
        String::from_utf8_lossy(&flipped.stdout)
    );

    // Meta disagreement on a strict key refuses the comparison: exit 3.
    let other_meta =
        "  \"meta\": {\"schema\": 1, \"suite\": \"table1\", \"threads\": 4, \"clock\": \"wall\"},\n";
    let old_schema = write_tmp(
        &dir,
        "old_schema.json",
        &bench_doc(other_meta, 1.0, "safe", true),
    );
    let refused = homc()
        .args(["bench-diff", &base, &old_schema])
        .output()
        .expect("runs");
    assert_eq!(
        refused.status.code(),
        Some(3),
        "{}",
        String::from_utf8_lossy(&refused.stdout)
    );

    // Unreadable input: exit 3.
    let missing = dir.join("nope.json").to_string_lossy().into_owned();
    let unreadable = homc()
        .args(["bench-diff", &base, &missing])
        .output()
        .expect("runs");
    assert_eq!(unreadable.status.code(), Some(3));
}

#[test]
fn trace_diff_cli_exit_codes() {
    let dir = tmpdir("trace");
    let (_, trace) = logical_run(
        suite::find("intro1").expect("present").source,
        Metrics::disabled(),
    );
    let a = write_tmp(&dir, "a.jsonl", &trace);

    // A trace against itself: no differences, exit 0.
    let same = homc().args(["trace-diff", &a, &a]).output().expect("runs");
    assert_eq!(
        same.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&same.stdout)
    );

    // Flip the verdict in the second trace: exit 2.
    let flipped_text = trace.replace("\"verdict\":\"safe\"", "\"verdict\":\"unsafe\"");
    assert_ne!(flipped_text, trace, "fixture must contain a safe verdict");
    let b = write_tmp(&dir, "b.jsonl", &flipped_text);
    let flip = homc().args(["trace-diff", &a, &b]).output().expect("runs");
    assert_eq!(
        flip.status.code(),
        Some(2),
        "{}",
        String::from_utf8_lossy(&flip.stdout)
    );
}
