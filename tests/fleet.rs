//! End-to-end fleet-observability tests through the real `homc` binary:
//!
//! * a `--progress` stream is schema-valid and replayable by `homc top
//!   --snapshot` (deterministically),
//! * enabling `--progress` does **not** perturb the logical job trace — the
//!   acceptance criterion for the separate-sink design,
//! * `homc batch --json` emits a stable, schema-versioned document,
//! * `--ledger` appends records that `homc history` renders, and
//! * `--metrics-out` writes well-formed Prometheus text exposition.

use std::fs;
use std::path::PathBuf;
use std::process::Command;

use homc::{parse_json, validate_trace, JsonValue};

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("homc-fleet-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    fs::create_dir_all(&d).expect("mkdir");
    d
}

fn homc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_homc"))
}

fn run_ok(cmd: &mut Command) -> String {
    let out = cmd.output().expect("homc runs");
    assert!(
        out.status.success(),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn progress_stream_is_schema_valid_and_top_replays_it() {
    let dir = tmpdir("progress");
    let progress = dir.join("progress.jsonl");
    run_ok(
        homc()
            .args(["--suite", "sum", "--progress"])
            .arg(&progress)
            .args(["--trace-logical"])
            .arg(dir.join("trace.jsonl")),
    );
    let stream = fs::read_to_string(&progress).expect("progress written");
    let n = validate_trace(&stream).unwrap_or_else(|(l, e)| panic!("line {l}: {e}"));
    assert!(
        n >= 4,
        "batch_start, job_queued, batch_job, batch_end: {stream}"
    );
    assert!(stream.contains("\"ev\":\"job_phase\""), "{stream}");

    // `homc top --snapshot` renders the settled stream, deterministically.
    let snap = run_ok(homc().args(["top", "--snapshot"]).arg(&progress));
    assert!(snap.contains("fleet: 1 job(s), 1 worker(s)"), "{snap}");
    assert!(
        snap.contains("tally: 1 passed, 0 failed, 0 unknown"),
        "{snap}"
    );
    assert_eq!(
        snap,
        run_ok(homc().args(["top", "--snapshot"]).arg(&progress))
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn progress_sink_does_not_perturb_logical_traces() {
    let dir = tmpdir("identity");
    let quiet = dir.join("quiet.jsonl");
    let observed = dir.join("observed.jsonl");
    run_ok(
        homc()
            .args(["--suite", "sum", "--trace-logical"])
            .arg(&quiet),
    );
    run_ok(
        homc()
            .args(["--suite", "sum", "--trace-logical"])
            .arg(&observed)
            .arg("--progress")
            .arg(dir.join("progress.jsonl")),
    );
    let quiet = fs::read_to_string(&quiet).expect("quiet trace");
    let observed = fs::read_to_string(&observed).expect("observed trace");
    assert!(!quiet.is_empty());
    assert_eq!(
        quiet, observed,
        "logical job traces must be byte-identical with progress on or off"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn batch_json_is_stable_and_schema_versioned() {
    let dir = tmpdir("json");
    let args = ["batch", "sum", "--logical", "--json", "--workers", "1"];
    let doc = run_ok(homc().args(args));
    let v = parse_json(doc.trim()).expect("stdout is one JSON document");
    let meta = v.get("meta").expect("meta");
    assert_eq!(meta.get("schema").and_then(JsonValue::as_num), Some(2));
    assert_eq!(
        meta.get("clock").and_then(JsonValue::as_str),
        Some("logical")
    );
    let jobs = v.get("jobs").and_then(JsonValue::as_arr).expect("jobs");
    assert_eq!(jobs.len(), 1);
    assert_eq!(jobs[0].get("name").and_then(JsonValue::as_str), Some("sum"));
    assert_eq!(jobs[0].get("wall_us").and_then(JsonValue::as_num), Some(0));
    // Stable: a logical rerun produces the identical document.
    assert_eq!(doc, run_ok(homc().args(args)));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn ledger_accumulates_and_history_renders() {
    let dir = tmpdir("ledger");
    let ledger = dir.join("ledger");
    for _ in 0..2 {
        run_ok(
            homc()
                .args(["batch", "sum", "--workers", "1", "--ledger"])
                .arg(&ledger),
        );
    }
    assert!(ledger.join("run-000001.led").exists());
    assert!(ledger.join("run-000002.led").exists());

    let history = run_ok(homc().arg("history").arg(&ledger));
    assert!(history.contains("sum"), "{history}");
    assert!(history.contains("2 run(s)"), "{history}");
    let filtered = run_ok(homc().arg("history").arg(&ledger).arg("sum"));
    assert!(filtered.contains("batch"), "{filtered}");

    // Two steady runs: the gate is clean.
    let out = homc()
        .arg("regress")
        .arg(&ledger)
        .output()
        .expect("regress");
    assert_eq!(out.status.code(), Some(0));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn metrics_out_is_wellformed_prometheus_exposition() {
    let dir = tmpdir("prom");
    let prom = dir.join("metrics.prom");
    run_ok(homc().args(["--suite", "sum", "--metrics-out"]).arg(&prom));
    let text = fs::read_to_string(&prom).expect("metrics written");
    assert!(text.contains("# HELP"), "{text}");
    assert!(text.contains("# TYPE"), "{text}");
    assert!(text.contains("homc_smt_solves_total"), "{text}");
    let name_ok = |name: &str| {
        !name.is_empty()
            && name
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
            && !name.starts_with(|c: char| c.is_ascii_digit())
    };
    for line in text
        .lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
    {
        let name = line.split(['{', ' ']).next().unwrap_or("");
        assert!(name_ok(name), "bad metric name in {line:?}");
        assert!(
            line.rsplit(' ').next().unwrap_or("").parse::<u64>().is_ok(),
            "sample value must be an integer: {line:?}"
        );
    }
    let _ = fs::remove_dir_all(&dir);
}
