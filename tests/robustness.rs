//! Degradation tests: under starved budgets, expired deadlines, and
//! deterministically injected faults, the verifier must always *terminate
//! with a verdict* — `Unknown` with a structured reason — and never panic,
//! hang, or abort.

use std::time::Duration;

use homc::{
    verify, Expected, FaultKind, FaultPlan, LimitKind, Phase, UnknownReason, Verdict,
    VerifierOptions,
};
use homc_hbp::check::CheckLimits;

/// The paper's §1 example M1: safe, but only after one CEGAR refinement —
/// so a full run exercises every phase (abs, mc, feas, interp, smt).
const M1: &str = "let f x g = g (x + 1) in
                  let h y = assert (y > 0) in
                  let k n = if n > 0 then f n h else () in
                  k m";

/// Suite programs the degradation sweeps run over: a safe program needing
/// refinement, a genuinely unsafe one, and a first-order recursive one.
fn sample_programs() -> Vec<(&'static str, &'static str)> {
    let mut out = vec![("m1", M1)];
    for name in ["sum", "mc91", "repeat-e"] {
        let p = homc::suite::find(name).expect("suite program exists");
        out.push((p.name, p.source));
    }
    out
}

fn reason_of(verdict: &Verdict) -> &UnknownReason {
    match verdict {
        Verdict::Unknown { reason } => reason,
        other => panic!("expected Unknown, got {other}"),
    }
}

/// Starved model-checker limits degrade every program to `Unknown` with a
/// structured budget reason (after the one escalation retry also starves).
#[test]
fn tiny_check_limits_degrade_to_unknown() {
    let opts = VerifierOptions {
        check: CheckLimits {
            max_base_combos: 1,
            max_typings: 1,
            max_search_steps: 1,
        },
        ..VerifierOptions::default()
    };
    for (name, src) in sample_programs() {
        let out = verify(src, &opts).expect("no hard error");
        match reason_of(&out.verdict) {
            UnknownReason::Budget(e) => {
                assert_eq!(e.phase, Phase::Mc, "{name}: wrong phase: {e}");
                assert!(e.retryable(), "{name}: CheckLimits bounds are retryable");
            }
            other => panic!("{name}: expected a budget reason, got {other}"),
        }
        assert_eq!(out.stats.retries, 1, "{name}: must have tried escalation");
    }
}

/// An already-expired deadline degrades every program to `Unknown(deadline)`
/// — quickly, and without a retry (deadlines are not retryable).
#[test]
fn expired_deadline_degrades_to_unknown() {
    let opts = VerifierOptions {
        timeout: Some(Duration::ZERO),
        ..VerifierOptions::default()
    };
    for (name, src) in sample_programs() {
        let out = verify(src, &opts).expect("no hard error");
        match reason_of(&out.verdict) {
            UnknownReason::Budget(e) => {
                assert_eq!(e.limit, LimitKind::Deadline, "{name}: {e}");
            }
            other => panic!("{name}: expected deadline, got {other}"),
        }
        assert_eq!(out.stats.retries, 0, "{name}: deadlines must not retry");
    }
}

/// A millisecond-scale deadline still terminates with a verdict on every
/// sampled program (fast programs may legitimately finish).
#[test]
fn millisecond_deadline_always_terminates() {
    let opts = VerifierOptions {
        timeout: Some(Duration::from_millis(1)),
        ..VerifierOptions::default()
    };
    for (name, src) in sample_programs() {
        let out = verify(src, &opts).expect("no hard error");
        match out.verdict {
            Verdict::Safe | Verdict::Unsafe { .. } | Verdict::Unknown { .. } => {}
        }
        let _ = name;
    }
}

/// A starved fuel pool degrades to `Unknown(fuel)`; fuel is retryable, but
/// the pool is shared across the retry, so the retry starves too.
#[test]
fn tiny_fuel_degrades_to_unknown() {
    let opts = VerifierOptions {
        fuel: Some(5),
        ..VerifierOptions::default()
    };
    let out = verify(M1, &opts).expect("no hard error");
    match reason_of(&out.verdict) {
        UnknownReason::Budget(e) => assert_eq!(e.limit, LimitKind::Fuel, "{e}"),
        other => panic!("expected fuel exhaustion, got {other}"),
    }
}

/// An injected error fault in *each* phase turns into `Unknown(injected
/// fault)` attributed to that phase — no panic, no hang, no wrong verdict.
#[test]
fn injected_error_fault_in_every_phase_degrades() {
    for phase in homc_budget::PHASES {
        let opts = VerifierOptions {
            faults: FaultPlan::one(phase, 1, FaultKind::Error),
            ..VerifierOptions::default()
        };
        let out = verify(M1, &opts).expect("no hard error");
        match reason_of(&out.verdict) {
            UnknownReason::Budget(e) => {
                assert_eq!(e.limit, LimitKind::Injected, "{phase}: {e}");
                assert_eq!(e.phase, phase, "fault attributed to the wrong phase");
                assert!(!e.retryable(), "{phase}: injections must not retry");
            }
            other => panic!("{phase}: expected injected fault, got {other}"),
        }
    }
}

/// An injected *panic* fault is caught at the iteration boundary and
/// reported as an internal fault with the panic message preserved.
#[test]
fn injected_panic_fault_becomes_internal_fault() {
    for phase in homc_budget::PHASES {
        let opts = VerifierOptions {
            faults: FaultPlan::one(phase, 1, FaultKind::Panic),
            ..VerifierOptions::default()
        };
        let out = verify(M1, &opts).expect("panic must not escape verify");
        match reason_of(&out.verdict) {
            UnknownReason::InternalFault(msg) => {
                assert!(
                    msg.contains("injected"),
                    "{phase}: panic message lost: {msg:?}"
                );
            }
            other => panic!("{phase}: expected InternalFault, got {other}"),
        }
    }
}

/// Late injections (after the pipeline has already done real work in the
/// phase) still degrade cleanly on every sampled program.
#[test]
fn late_injections_degrade_cleanly() {
    for (name, src) in sample_programs() {
        for phase in [Phase::Smt, Phase::Mc] {
            let opts = VerifierOptions {
                faults: FaultPlan::one(phase, 100, FaultKind::Error),
                ..VerifierOptions::default()
            };
            let out = verify(src, &opts).expect("no hard error");
            // The fault may or may not fire (the phase may finish in fewer
            // than 100 checkpoints); either way the run must end in a
            // verdict, and a fired fault must surface as Unknown(injected).
            if let Verdict::Unknown { reason } = &out.verdict {
                match reason {
                    UnknownReason::Budget(e) => {
                        assert_eq!(e.limit, LimitKind::Injected, "{name}/{phase}: {e}")
                    }
                    UnknownReason::InternalFault(_) => {
                        panic!("{name}/{phase}: error fault must not panic")
                    }
                    _ => {}
                }
            }
        }
    }
}

/// The degradation sweep over real suite expectations: with a 1-second
/// per-program deadline, every verdict is either correct or Unknown —
/// never the *wrong* decisive verdict.
#[test]
fn deadline_never_flips_a_verdict() {
    let opts = VerifierOptions {
        timeout: Some(Duration::from_secs(1)),
        ..VerifierOptions::default()
    };
    for name in ["intro1", "sum-e", "r-lock"] {
        let p = homc::suite::find(name).expect("suite program");
        let out = verify(p.source, &opts).expect("no hard error");
        match (&out.verdict, p.expected) {
            (Verdict::Unknown { .. }, _) => {}
            (v, Expected::Safe) => assert!(v.is_safe(), "{name}: flipped to {v}"),
            (v, Expected::Unsafe) => assert!(v.is_unsafe(), "{name}: flipped to {v}"),
            (v, Expected::Diverges) => assert!(!v.is_unsafe(), "{name}: flipped to {v}"),
        }
    }
}
