//! Executable checks of the paper's theorems on concrete instances.

use homc_abs::{abstract_program, AbsEnv, AbsOptions};
use homc_cegar::{build_trace, refine_env, Feasibility, RefineOptions, TraceEnd};
use homc_hbp::check::{CheckLimits, Checker};
use homc_hbp::{find_error_path, source_labels};
use homc_lang::eval::Label;
use homc_lang::frontend;
use homc_smt::SmtSolver;

const M1: &str = "let f x g = g (x + 1) in
                  let h y = assert (y > 0) in
                  let k n = if n > 0 then f n h else () in
                  k m";

/// Theorem 3.1 (decidability): saturation terminates even on abstract
/// programs with unboundedly nested closures (`hrec`).
#[test]
fn thm_3_1_decidability_on_hrec() {
    let src = "let succ x = x + 1 in
               let rec f g x = if x >= 0 then g x else f (f g) (g x) in
               assert (f succ n >= 0)";
    let compiled = frontend(src).expect("compiles");
    let env = AbsEnv::initial(&compiled.cps);
    let (bp, _) = abstract_program(&compiled.cps, &env, &AbsOptions::default()).expect("abstracts");
    let mut checker = Checker::new(&bp, CheckLimits::default()).expect("checker");
    checker.saturate().expect("must terminate (Theorem 3.1)");
}

/// Theorem 4.3 (soundness of abstraction): for every concrete failing run
/// of the source, the abstract program also fails — checked here in the
/// contrapositive form the verifier relies on: when the model checker says
/// the abstraction is safe, no concrete run may fail. We fuzz schedules.
#[test]
fn thm_4_3_soundness_of_abstraction() {
    use homc_lang::eval::{run, ScriptDriver};
    // A safe program, abstracted *with* refinement until safe.
    let compiled = frontend(M1).expect("compiles");
    let mut env = AbsEnv::initial(&compiled.cps);
    let solver = SmtSolver::new();
    // One refinement round is enough for M1.
    let trace = build_trace(&compiled.cps, &[Label::Zero, Label::One], 10_000).expect("traces");
    refine_env(
        &compiled.cps,
        &trace,
        &mut env,
        &solver,
        &RefineOptions::default(),
    )
    .expect("refines");
    let (bp, _) = abstract_program(&compiled.cps, &env, &AbsOptions::default()).expect("abstracts");
    let mut checker = Checker::new(&bp, CheckLimits::default()).expect("checker");
    checker.saturate().expect("saturates");
    assert!(!checker.may_fail(), "M1's refined abstraction is safe");
    // Soundness: then no concrete schedule may fail.
    for n in -5..=5 {
        for bits in 0..16u8 {
            let labels: Vec<Label> = (0..4)
                .map(|i| {
                    if (bits >> i) & 1 == 1 {
                        Label::One
                    } else {
                        Label::Zero
                    }
                })
                .collect();
            let mut d = ScriptDriver::new(labels, vec![n]);
            let (out, _) = run(&compiled.cps, &mut d, 100_000);
            assert!(
                !out.is_fail(),
                "concrete failure (n={n}, bits={bits:#b}) under a safe abstraction \
                 contradicts Theorem 4.3"
            );
        }
    }
}

/// Theorem 5.3 (progress): after refining on a spurious path, the *same*
/// path is no longer a path of the new abstract program.
#[test]
fn thm_5_3_progress() {
    let compiled = frontend(M1).expect("compiles");
    let mut env = AbsEnv::initial(&compiled.cps);
    let solver = SmtSolver::new();

    // Round 1: get the spurious path from the actual model checker.
    let (bp, _) = abstract_program(&compiled.cps, &env, &AbsOptions::default()).expect("abstracts");
    let mut checker = Checker::new(&bp, CheckLimits::default()).expect("checker");
    checker.saturate().expect("saturates");
    assert!(checker.may_fail(), "round 1 must find a (spurious) path");
    let path1 = find_error_path(&mut checker)
        .expect("budget")
        .expect("path");
    let labels1 = source_labels(&path1);

    let trace = build_trace(&compiled.cps, &labels1, 10_000).expect("traces");
    assert_eq!(trace.end, TraceEnd::ReachedFail);
    let (feas, changed) = refine_env(
        &compiled.cps,
        &trace,
        &mut env,
        &solver,
        &RefineOptions::default(),
    )
    .expect("refines");
    assert!(matches!(feas, Feasibility::Infeasible));
    assert!(changed);

    // Round 2: the refined abstraction must not contain the old path. (For
    // M1 it is in fact safe, which subsumes progress.)
    let (bp2, _) =
        abstract_program(&compiled.cps, &env, &AbsOptions::default()).expect("abstracts");
    let mut checker2 = Checker::new(&bp2, CheckLimits::default()).expect("checker");
    checker2.saturate().expect("saturates");
    if checker2.may_fail() {
        let path2 = find_error_path(&mut checker2)
            .expect("budget")
            .expect("path");
        assert_ne!(
            source_labels(&path2),
            labels1,
            "progress (Thm 5.3): the refuted path must be excluded"
        );
    }
}

/// Lemma 5.1: straightline traces are linear (activations in call order),
/// contain no choices, and replay to `fail` exactly when the labels lead
/// there.
#[test]
fn lemma_5_1_straightline_properties() {
    let compiled = frontend(M1).expect("compiles");
    let trace = build_trace(&compiled.cps, &[Label::Zero, Label::One], 10_000).expect("traces");
    assert!(trace.is_straightline());
    assert_eq!(trace.end, TraceEnd::ReachedFail);
    // A non-failing label choice ends without failure.
    let trace2 = build_trace(&compiled.cps, &[Label::Zero, Label::Zero], 10_000).expect("traces");
    assert_eq!(trace2.end, TraceEnd::Finished);
}

/// Example 5.2's essence: the constraint system of M3's spurious path is
/// solved with a *dependent* predicate equivalent to `ν > z` on h's second
/// parameter.
#[test]
fn example_5_2_dependent_predicate() {
    let m3 = "let f x g = g (x + 1) in
              let h z y = assert (y > z) in
              let k n = if n >= 0 then f n (h n) else () in
              k m";
    let compiled = frontend(m3).expect("compiles");
    let trace = build_trace(&compiled.cps, &[Label::Zero, Label::One], 10_000).expect("traces");
    let refinement = homc_cegar::discover_predicates(
        &compiled.cps,
        &trace,
        &RefineOptions {
            seed_from_path: false,
            ..RefineOptions::default()
        },
    )
    .expect("refines");
    let has_dependent = refinement.fun_updates.values().any(|scheme| {
        scheme.iter().any(|(_, t)| match t {
            homc_abs::AbsTy::Base(_, ps) => ps.iter().any(|p| !p.free_vars().is_empty()),
            _ => false,
        })
    });
    assert!(has_dependent, "expected ν > z: {refinement:?}");
}

/// The full pipeline respects genuine counterexamples: for an unsafe
/// program the verifier's witness and path replay to a concrete failure.
#[test]
fn counterexamples_are_genuine() {
    use homc::{verify, Verdict, VerifierOptions};
    use homc_lang::eval::{run, ScriptDriver};
    for src in [
        "assert (n > 0)",
        "let rec sum n = if n <= 0 then 0 else n + sum (n - 1) in assert (m < sum m)",
        "let f x g = g (x - 1) in
         let h y = assert (y > 0) in
         let k n = if n > 0 then f n h else () in
         k m",
    ] {
        let out = verify(src, &VerifierOptions::default()).expect("runs");
        let Verdict::Unsafe { witness, path } = &out.verdict else {
            panic!("expected unsafe for {src}, got {}", out.verdict);
        };
        let compiled = frontend(src).expect("compiles");
        let mut d = ScriptDriver::new(path.clone(), witness.clone());
        let (outcome, _) = run(&compiled.cps, &mut d, 1_000_000);
        assert!(outcome.is_fail(), "witness must replay: {src}");
    }
}
