//! Quickstart: verify the paper's introductory example end-to-end.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! The program is M1 from §1 of Kobayashi–Sato–Unno (PLDI 2011): a
//! higher-order function `f` passes `x + 1` to an unknown continuation `g`;
//! the assertion inside `h` holds only because `k` guards the call with
//! `n > 0`. Proving this automatically needs (a) predicate discovery —
//! nothing is known about `ν > 0` up front — and (b) higher-order model
//! checking, because the predicate flows through the function argument `g`.

use homc::{verify, Verdict, VerifierOptions};

fn main() {
    let program = "
        let f x g = g (x + 1) in
        let h y = assert (y > 0) in
        let k n = if n > 0 then f n h else () in
        k m";

    println!("verifying M1 (the paper's §1 example):\n{program}\n");
    let outcome = verify(program, &VerifierOptions::default()).expect("verification runs");
    println!(
        "verdict: {}   (CEGAR cycles: {}, predicates: {}, {:.3}s)",
        outcome.verdict,
        outcome.stats.cycles,
        outcome.stats.predicates,
        outcome.stats.total.as_secs_f64(),
    );
    assert_eq!(outcome.verdict, Verdict::Safe);

    // Now a buggy variant: the guard is gone, so some `m` breaks the
    // assertion. The verifier returns a concrete witness.
    let buggy = "
        let f x g = g (x + 1) in
        let h y = assert (y > 0) in
        let k n = f n h in
        k m";
    println!("\nverifying the unguarded variant:");
    let outcome = verify(buggy, &VerifierOptions::default()).expect("verification runs");
    match &outcome.verdict {
        Verdict::Unsafe { witness, path } => {
            println!(
                "verdict: unsafe — fails when m = {} (error path labels: {:?})",
                witness[0], path
            );
            assert!(witness[0] < 0, "witness must break y = m + 1 > 0");
        }
        other => panic!("expected a counterexample, got {other}"),
    }
}
