//! Verifying resource-usage protocols (the paper's `r-lock` / `r-file`
//! scenario): locks and files whose legal usage is encoded with integer
//! states and assertions, with behaviour depending on unbounded counters.
//!
//! ```sh
//! cargo run --release --example resource_protocol
//! ```

use homc::{verify, Verdict, VerifierOptions};

/// A lock protocol: `lock` must only be taken when free, `unlock` only when
/// held. The loop runs an unknown number of iterations, so finite-state
//  exploration cannot decide this — CEGAR discovers the state invariants.
const LOCK_OK: &str = "
    let lock st = assert (st = 0); 1 in
    let unlock st = assert (st = 1); 0 in
    let rec loop n st = if n <= 0 then st else loop (n - 1) (unlock (lock st)) in
    assert (loop n 0 = 0)";

/// The buggy variant double-unlocks.
const LOCK_BAD: &str = "
    let lock st = assert (st = 0); 1 in
    let unlock st = assert (st = 1); 0 in
    let rec loop n st = if n <= 0 then st else loop (n - 1) (unlock (unlock (lock st))) in
    assert (loop n 0 = 0)";

/// A file protocol: open, read an unknown number of times, close — repeated
/// for an unknown number of sessions.
const FILE_OK: &str = "
    let fopen st = assert (st = 0); 1 in
    let fread st = assert (st = 1); st in
    let fclose st = assert (st = 1); 0 in
    let rec reads n st = if n <= 0 then st else reads (n - 1) (fread st) in
    let session n st = fclose (reads n (fopen st)) in
    let rec sessions k n st = if k <= 0 then st else sessions (k - 1) n (session n st) in
    assert (sessions k n 0 = 0)";

fn main() {
    let opts = VerifierOptions::default();
    for (name, src, expect_safe) in [
        ("lock protocol", LOCK_OK, true),
        ("double unlock", LOCK_BAD, false),
        ("file sessions", FILE_OK, true),
    ] {
        let out = verify(src, &opts).expect("verification runs");
        println!(
            "{name:15} -> {}  (cycles {}, {:.2}s)",
            out.verdict,
            out.stats.cycles,
            out.stats.total.as_secs_f64()
        );
        match (expect_safe, &out.verdict) {
            (true, Verdict::Safe) => {}
            (false, Verdict::Unsafe { .. }) => {}
            (want, got) => panic!("{name}: wanted safe={want}, got {got}"),
        }
    }
    println!("\nall protocol verdicts are as expected");
}
