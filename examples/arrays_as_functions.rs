//! Arrays encoded as functions (the paper's §6 `a-*` benchmarks).
//!
//! "Various data structures can be encoded as higher-order functions, and
//! their properties can be verified in a uniform manner" — an array is a
//! function from indices to contents; `update` is functional extension;
//! bound checks become assertions inside the constructor.
//!
//! ```sh
//! cargo run --release --example arrays_as_functions
//! ```

use homc::{verify, Verdict, VerifierOptions};

/// In-bounds traversal: every access `v i` inside `dotprod` satisfies
/// `0 <= i < n`, discharging `mk_array`'s bound assertion.
const DOTPROD: &str = "
    let mk_array n i = assert (0 <= i && i < n); 0 in
    let rec dotprod n v1 v2 i acc =
      if i >= n then acc
      else dotprod n v1 v2 (i + 1) (acc + v1 i * v2 i)
    in
    let r = dotprod n (mk_array n) (mk_array n) 0 0 in
    ()";

/// An off-by-one bug: the loop runs to `i <= n`, reading one past the end.
const DOTPROD_BAD: &str = "
    let mk_array n i = assert (0 <= i && i < n); 0 in
    let rec dotprod n v1 v2 i acc =
      if i > n then acc
      else dotprod n v1 v2 (i + 1) (acc + v1 i * v2 i)
    in
    let r = dotprod n (mk_array n) (mk_array n) 0 0 in
    ()";

/// Functional array update: initialization writes 1 everywhere, and reads
/// after initialization are non-negative.
const INIT: &str = "
    let mk_array n i = assert (0 <= i && i < n); 0 in
    let update i a x j = if i = j then x else a j in
    let rec init i n a =
      if i >= n then a
      else init (i + 1) n (update i a 1)
    in
    let a = init 0 n (mk_array n) in
    if 0 <= k && k < n then assert (a k >= 0) else ()";

fn main() {
    let opts = VerifierOptions::default();
    for (name, src, expect_safe) in [
        ("dotprod (in bounds)", DOTPROD, true),
        ("dotprod (off by one)", DOTPROD_BAD, false),
        ("init + read", INIT, true),
    ] {
        let out = verify(src, &opts).expect("verification runs");
        println!(
            "{name:22} -> {}  (cycles {}, {:.2}s)",
            out.verdict,
            out.stats.cycles,
            out.stats.total.as_secs_f64()
        );
        match (expect_safe, &out.verdict) {
            (true, Verdict::Safe) => {}
            (false, Verdict::Unsafe { .. }) => {}
            (want, got) => panic!("{name}: wanted safe={want}, got {got}"),
        }
    }
    println!("\nall array verdicts are as expected");
}
