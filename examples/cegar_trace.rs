//! A guided tour of one CEGAR iteration (the paper's Figure 1, narrated).
//!
//! Runs the pipeline on M3 (§1) step by step, printing each artifact: the
//! CPS kernel, the abstract boolean program, the model checker's error path,
//! the straightline trace `SHP(D, σ)`, the discovered predicates, and the
//! second (successful) round.
//!
//! ```sh
//! cargo run --release --example cegar_trace
//! ```

use homc_abs::{abstract_program, AbsEnv, AbsOptions};
use homc_cegar::{build_trace, refine_env, Feasibility, RefineOptions};
use homc_hbp::check::{CheckLimits, Checker};
use homc_hbp::{find_error_path, source_labels};
use homc_lang::frontend;
use homc_smt::SmtSolver;

fn main() {
    // M3: h's second argument must exceed its first — a *dependent*
    // abstraction type is required (y : int[λν. ν > z]).
    let src = "
        let f x g = g (x + 1) in
        let h z y = assert (y > z) in
        let k n = if n >= 0 then f n (h n) else () in
        k m";

    println!("source (M3):{src}\n");
    let compiled = frontend(src).expect("compiles");
    println!("— after CPS (the verification subject) —\n{}", compiled.cps);

    let mut env = AbsEnv::initial(&compiled.cps);
    let solver = SmtSolver::new();

    for round in 1.. {
        println!("═══ CEGAR round {round} ═══");

        // Step 1: predicate abstraction.
        let (bp, stats) =
            abstract_program(&compiled.cps, &env, &AbsOptions::default()).expect("abstracts");
        println!(
            "step 1: abstracted to a boolean program ({} AST nodes, {} SMT queries, {} coercions)",
            bp.size(),
            stats.sat_queries,
            stats.coercions
        );

        // Step 2: higher-order model checking.
        let mut checker = Checker::new(&bp, CheckLimits::default()).expect("checker");
        checker.saturate().expect("saturates");
        println!(
            "step 2: model checked ({} typings, {} rounds)",
            checker.stats().typings,
            checker.stats().rounds
        );
        if !checker.may_fail() {
            println!("        no error path: the program is SAFE ✓");
            break;
        }
        let path = find_error_path(&mut checker)
            .expect("extraction in budget")
            .expect("failing program has a path");
        let labels = source_labels(&path);
        println!("        abstract error path: {labels:?} (ε steps elided)");

        // Step 3: feasibility via the straightline program.
        let trace = build_trace(&compiled.cps, &labels, 100_000).expect("traces");
        println!("step 3: SHP(D, σ) — the straightline trace:\n{trace}");

        // Step 4: refinement.
        let before = env.fingerprint();
        let (feas, changed) = refine_env(
            &compiled.cps,
            &trace,
            &mut env,
            &solver,
            &RefineOptions::default(),
        )
        .expect("refines");
        match feas {
            Feasibility::Feasible(w) => {
                println!("step 3 verdict: FEASIBLE — real bug, witness {w:?}");
                break;
            }
            Feasibility::Infeasible => {
                println!(
                    "step 3 verdict: spurious; step 4 added {} predicates:",
                    env.fingerprint() - before
                );
                for (f, scheme) in &env.schemes {
                    for (x, t) in scheme {
                        let shown = format!("{t}");
                        if shown.contains('λ') && shown.contains("ν")
                            || shown.contains("<=")
                            || shown.contains('>')
                        {
                            println!("        {f}.{x} : {t}");
                        }
                    }
                }
                assert!(changed, "progress property (Thm 5.3)");
            }
            Feasibility::Unknown => {
                println!("step 3 verdict: inconclusive");
                break;
            }
            Feasibility::Exhausted(e) => {
                println!("step 3 verdict: budget exhausted ({e})");
                break;
            }
        }
        println!();
    }
}
